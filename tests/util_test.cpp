// util_test.cpp - utility layer: deterministic RNG and the ASCII table
// writer used by the benchmark harnesses.
#include <gtest/gtest.h>

#include <sstream>

#include "util/check.h"
#include "util/rng.h"
#include "util/table.h"

using softsched::rng;
using softsched::table;

TEST(Rng, DeterministicAcrossInstances) {
  rng a(42);
  rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  rng a(1);
  rng b(2);
  bool differed = false;
  for (int i = 0; i < 10 && !differed; ++i) differed = a.next() != b.next();
  EXPECT_TRUE(differed);
}

TEST(Rng, BelowStaysInRange) {
  rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  rng r(8);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t x = r.range(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= x == -3;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  rng r(10);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ShufflePreservesElements) {
  rng r(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  r.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Table, AlignsColumns) {
  table t;
  t.set_header({"a", "long-header", "c"});
  t.add_row({"xxxxxx", "1", "2"});
  t.add_separator();
  t.add_row({"y", "22", "333"});
  std::ostringstream ss;
  t.print(ss);
  const std::string text = ss.str();
  // All rule lines identical -> columns aligned.
  std::istringstream lines(text);
  std::string line;
  std::string rule;
  std::size_t rule_count = 0;
  while (std::getline(lines, line)) {
    if (!line.empty() && line[0] == '+') {
      if (rule.empty()) rule = line;
      EXPECT_EQ(line, rule);
      ++rule_count;
    }
  }
  EXPECT_EQ(rule_count, 4u); // top, under-header, separator, bottom
  EXPECT_NE(text.find("long-header"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  table t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), softsched::precondition_error);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(softsched::cell(42), "42");
  EXPECT_EQ(softsched::cell(-7), "-7");
  EXPECT_EQ(softsched::cell(3.14159, 2), "3.14");
  EXPECT_EQ(softsched::cell(2.0, 1), "2.0");
}

TEST(Check, MacroThrowsWithContext) {
  try {
    SOFTSCHED_EXPECT(1 == 2, "one is not two");
    FAIL() << "expected precondition_error";
  } catch (const softsched::precondition_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
  }
}
