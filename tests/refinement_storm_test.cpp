// refinement_storm_test.cpp - failure-injection / stress property test:
// fire long random sequences of refinements (spills, wire delays,
// register moves, ECO op additions) at live threaded schedules and check
// every invariant after every single step. This is the soft-scheduling
// robustness claim under sustained engineering change.
#include <gtest/gtest.h>

#include "core/hls_binding.h"
#include "core/threaded_graph.h"
#include "graph/distances.h"
#include "hard/extract.h"
#include "hard/schedule.h"
#include "ir/benchmarks.h"
#include "meta/meta_schedule.h"
#include "refine/refinement.h"
#include "util/rng.h"

namespace sg = softsched::graph;
namespace sc = softsched::core;
namespace si = softsched::ir;
namespace sh = softsched::hard;
namespace sm = softsched::meta;
namespace sf = softsched::refine;
using sg::vertex_id;
using softsched::rng;

namespace {

struct storm_case {
  const char* benchmark;
  std::uint64_t seed;
  int steps;
};

si::dfg make_benchmark(const si::resource_library& lib, const std::string& name) {
  if (name == "hal") return si::make_hal(lib);
  if (name == "arf") return si::make_arf(lib);
  if (name == "ewf") return si::make_ewf(lib);
  return si::make_fir8(lib);
}

/// Picks a random existing dependence edge between two non-wire ops.
std::pair<vertex_id, vertex_id> random_edge(const si::dfg& d, rng& rand) {
  std::vector<std::pair<vertex_id, vertex_id>> edges;
  for (const vertex_id v : d.graph().vertices()) {
    if (d.kind(v) == si::op_kind::wire) continue;
    for (const vertex_id s : d.graph().succs(v)) {
      if (d.kind(s) == si::op_kind::wire) continue;
      edges.emplace_back(v, s);
    }
  }
  return edges[static_cast<std::size_t>(rand.below(edges.size()))];
}

} // namespace

class RefinementStorm : public ::testing::TestWithParam<storm_case> {};

TEST_P(RefinementStorm, InvariantsSurviveSustainedChange) {
  const storm_case param = GetParam();
  const si::resource_library lib;
  si::dfg d = make_benchmark(lib, param.benchmark);
  rng rand(param.seed);

  sc::threaded_graph state = sc::make_hls_state(d, si::figure3_constraint(0));
  state.schedule_all(sm::meta_schedule(d.graph(), sm::meta_kind::list_priority));
  long long previous_diameter = state.diameter();

  for (int step = 0; step < param.steps; ++step) {
    const int action = static_cast<int>(rand.below(4));
    switch (action) {
    case 0: { // spill a random spillable value
      std::vector<vertex_id> candidates;
      for (const vertex_id v : d.graph().vertices()) {
        if (d.kind(v) == si::op_kind::store || d.kind(v) == si::op_kind::wire) continue;
        if (d.graph().succs(v).empty()) continue;
        candidates.push_back(v);
      }
      if (candidates.empty()) break;
      const vertex_id victim =
          candidates[static_cast<std::size_t>(rand.below(candidates.size()))];
      sf::apply_spill(d, state, victim);
      break;
    }
    case 1: { // wire delay on a random edge
      const auto [from, to] = random_edge(d, rand);
      sf::apply_wire_delay(d, state, from, to, 1 + static_cast<int>(rand.below(3)));
      break;
    }
    case 2: { // register move on a random edge
      const auto [from, to] = random_edge(d, rand);
      sf::apply_register_move(d, state, from, to);
      break;
    }
    default: { // ECO: new op consuming two random existing values
      const vertex_id a(static_cast<std::uint32_t>(rand.below(d.graph().vertex_count())));
      const vertex_id b(static_cast<std::uint32_t>(rand.below(d.graph().vertex_count())));
      std::vector<vertex_id> ins{a};
      if (b != a) ins.push_back(b);
      const vertex_id eco = d.add_op(si::op_kind::add,
                                     std::span<const vertex_id>(ins),
                                     std::string("eco") += std::to_string(step));
      state.schedule(eco);
      break;
    }
    }
    ASSERT_NO_THROW(state.check_invariants()) << param.benchmark << " step " << step;
    // Lemma 4 holds across refinements too: the diameter never shrinks.
    const long long now = state.diameter();
    ASSERT_GE(now, previous_diameter) << param.benchmark << " step " << step;
    previous_diameter = now;
    // Everything in the mutated DFG is scheduled - no op left behind.
    ASSERT_EQ(state.scheduled_count(), d.graph().vertex_count());
  }

  // The final state extracts into a valid hard schedule.
  sh::schedule s = sh::extract_schedule(state);
  const auto violations = sh::validate_schedule(d, s, nullptr);
  EXPECT_TRUE(violations.empty()) << violations.front();
  EXPECT_GE(s.makespan, sg::compute_distances(d.graph()).diameter);
}

INSTANTIATE_TEST_SUITE_P(
    Storms, RefinementStorm,
    ::testing::Values(storm_case{"hal", 101, 40}, storm_case{"arf", 102, 40},
                      storm_case{"ewf", 103, 40}, storm_case{"fir", 104, 40},
                      storm_case{"ewf", 105, 80}, storm_case{"arf", 106, 80}),
    [](const ::testing::TestParamInfo<storm_case>& info) {
      return std::string(info.param.benchmark) + "_seed" +
             std::to_string(info.param.seed);
    });
