// operation.h - behavioural operation kinds of the HLS intermediate
// representation. A dataflow-graph vertex is one operation; the kind decides
// which functional-unit class may execute it and its default latency.
#pragma once

#include <string_view>

namespace softsched::ir {

/// Operation kinds found in the HLSynth-era benchmarks plus the refinement
/// artifacts the paper's Section 1 scenarios introduce (spill stores/loads,
/// register moves from SSA phi resolution, wire-delay pseudo-ops).
enum class op_kind {
  add,     ///< addition (ALU)
  sub,     ///< subtraction (ALU)
  mul,     ///< multiplication (multiplier)
  compare, ///< relational compare (ALU)
  load,    ///< spill reload from background memory (memory port)
  store,   ///< spill store to background memory (memory port)
  move,    ///< register-to-register move, e.g. resolved SSA phi (ALU)
  wire,    ///< interconnect-delay pseudo operation (dedicated wire)
};

/// Short mnemonic ("+", "-", "*", "<", "ld", "st", "mv", "wd").
[[nodiscard]] std::string_view mnemonic(op_kind kind) noexcept;

/// Full name ("add", "sub", ...).
[[nodiscard]] std::string_view kind_name(op_kind kind) noexcept;

/// Number of distinct op kinds (for iteration in tests).
inline constexpr int op_kind_count = 8;

} // namespace softsched::ir
