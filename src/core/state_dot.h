// state_dot.h - Graphviz rendering of a threaded scheduling state: one
// cluster per thread (chain edges solid), cross edges dashed. The visual
// counterpart of the paper's Figure 1 (e).
#pragma once

#include <ostream>
#include <string_view>

#include "core/threaded_graph.h"

namespace softsched::core {

/// Writes the current state of `state` in DOT syntax. Vertex labels come
/// from the source graph's names; each thread becomes a vertical cluster.
void write_state_dot(std::ostream& os, const threaded_graph& state,
                     std::string_view graph_name = "threaded_state");

} // namespace softsched::core
