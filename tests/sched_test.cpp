// sched_test.cpp - the scheduler-backend registry (src/sched) and the
// backend threading through serve and explore:
//
//   * registry lookup, stable indices, capability flags;
//   * parity: every backend produces a legal schedule (precedence +
//     resource constraints via the shared hard::validate_schedule checker)
//     on the named benchmarks, bounded below by the critical path and
//     above by the serial sum of delays;
//   * the Figure-3 shape: soft tracks the list scheduler within one state
//     on the paper's first two resource constraints;
//   * determinism: repeat runs are bit-identical per backend;
//   * serve: the backend lands in the cache key (identical designs under
//     different backends never share an entry), mixed-backend request
//     streams stay deterministic across worker counts and cache sizes,
//     and unknown backends error field-level at parse time;
//   * explore: the backend axis emits per-backend Pareto frontiers,
//     identical for any worker count.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "explore/dse.h"
#include "graph/distances.h"
#include "hard/schedule.h"
#include "ir/benchmarks.h"
#include "ir/dfg_hash.h"
#include "sched/backend.h"
#include "serve/engine.h"
#include "util/check.h"

namespace ss = softsched::sched;
namespace se = softsched::explore;
namespace sh = softsched::hard;
namespace si = softsched::ir;
namespace sg = softsched::graph;
namespace sv = softsched::serve;
namespace sm = softsched::meta;
using softsched::infeasible_error;
using softsched::precondition_error;

namespace {

const char* const named_benchmarks[] = {"hal", "arf", "ewf", "fir8"};

long long serial_bound(const si::dfg& d) {
  long long total = 0;
  for (const sg::vertex_id v : d.graph().vertices()) total += d.graph().delay(v);
  return total;
}

/// One run on a fresh default (arena-backed) context - the plain spelling
/// most tests want; context reuse and arena/heap parity get their own
/// tests below.
ss::backend_outcome run_once(const ss::scheduler_backend& backend, const si::dfg& d,
                             const si::resource_library& lib,
                             const si::resource_set& rs,
                             const ss::backend_options& opt = {}) {
  ss::run_context ctx;
  return backend.run({d, lib, rs, opt}, ctx);
}

} // namespace

// -- registry ---------------------------------------------------------------

TEST(SchedRegistry, NamesLookupAndStableIndices) {
  EXPECT_EQ(ss::backend_names(), (std::vector<std::string>{"soft", "list", "fds"}));
  ASSERT_EQ(ss::registered_backends().size(), 3u);
  for (const char* name : {"soft", "list", "fds"}) {
    const ss::scheduler_backend* b = ss::find_backend(name);
    ASSERT_NE(b, nullptr) << name;
    EXPECT_EQ(b->name(), name);
    EXPECT_EQ(&ss::get_backend(name), b);
  }
  // Registry indices feed the serve cache salt: pinned, append-only.
  EXPECT_EQ(ss::backend_index("soft"), 0);
  EXPECT_EQ(ss::backend_index("list"), 1);
  EXPECT_EQ(ss::backend_index("fds"), 2);
  EXPECT_EQ(ss::backend_index("threaded"), -1);
  EXPECT_EQ(ss::find_backend("threaded"), nullptr);
}

TEST(SchedRegistry, UnknownNameThrowsListingBackends) {
  try {
    (void)ss::get_backend("simulated-annealing");
    FAIL() << "expected precondition_error";
  } catch (const precondition_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("simulated-annealing"), std::string::npos);
    EXPECT_NE(what.find("soft|list|fds"), std::string::npos);
  }
}

TEST(SchedRegistry, CapabilityFlags) {
  const ss::backend_caps soft = ss::get_backend("soft").caps();
  EXPECT_TRUE(soft.binds_units);
  EXPECT_TRUE(soft.uses_meta);
  EXPECT_TRUE(soft.refinable);
  EXPECT_FALSE(soft.time_constrained);

  const ss::backend_caps list = ss::get_backend("list").caps();
  EXPECT_TRUE(list.binds_units);
  EXPECT_FALSE(list.uses_meta);
  EXPECT_FALSE(list.refinable);

  const ss::backend_caps fds = ss::get_backend("fds").caps();
  EXPECT_FALSE(fds.binds_units);
  EXPECT_TRUE(fds.time_constrained);
}

// -- parity: legality on the named benchmarks -------------------------------

TEST(SchedParity, EveryBackendLegalOnNamedBenchmarks) {
  const si::resource_library lib;
  for (const char* name : named_benchmarks) {
    const si::dfg d = si::make_benchmark(name, lib);
    const long long critical = sg::compute_distances(d.graph()).diameter;
    // Figure 3's first two constraint columns; the third (2+/-,1*) is where
    // the FDS heuristic's peak plateaus - covered separately below.
    for (const int constraint : {0, 1}) {
      const si::resource_set rs = si::figure3_constraint(constraint);
      for (const ss::scheduler_backend* backend : ss::registered_backends()) {
        const ss::backend_outcome r = run_once(*backend, d, lib, rs);
        ASSERT_TRUE(r.feasible) << name << " " << rs.label() << " "
                                << backend->name() << ": " << r.infeasible_reason;
        EXPECT_GE(r.latency, critical) << name << " " << backend->name();
        EXPECT_LE(r.latency, serial_bound(d)) << name << " " << backend->name();
        ASSERT_EQ(r.start_times.size(), d.op_count());
        ASSERT_EQ(r.unit_of.size(), d.op_count());
        // The shared checker: precedence feasibility + class-wise
        // concurrency limits, one implementation for every backend.
        const auto violations = sh::validate_schedule(d, ss::to_hard_schedule(r), &rs);
        EXPECT_TRUE(violations.empty())
            << name << " " << rs.label() << " " << backend->name() << ": "
            << (violations.empty() ? "" : violations.front());
        for (const int u : r.unit_of) {
          if (backend->caps().binds_units)
            EXPECT_GE(u, 0) << backend->name();
          else
            EXPECT_EQ(u, -1) << backend->name();
        }
      }
    }
  }
}

TEST(SchedParity, SoftTracksListWithinOneStateOnFigure3Constraints) {
  // The paper's Figure 3 claim: threaded soft scheduling with the
  // list-priority meta order tracks the hard list scheduler. Both are
  // bounded below by the critical path; soft never trails by more than one
  // state on the first two constraint columns.
  const si::resource_library lib;
  const ss::scheduler_backend& soft = ss::get_backend("soft");
  const ss::scheduler_backend& list = ss::get_backend("list");
  for (const char* name : named_benchmarks) {
    const si::dfg d = si::make_benchmark(name, lib);
    for (const int constraint : {0, 1}) {
      const si::resource_set rs = si::figure3_constraint(constraint);
      const ss::backend_outcome s = run_once(soft, d, lib, rs);
      const ss::backend_outcome l = run_once(list, d, lib, rs);
      ASSERT_TRUE(s.feasible && l.feasible) << name;
      EXPECT_LE(s.latency, l.latency + 1) << name << " " << rs.label();
    }
  }
}

TEST(SchedParity, ZeroUnitAllocationIsAnOutcomeNotAnException) {
  const si::resource_library lib;
  const si::dfg d = si::make_benchmark("ewf", lib);
  const si::resource_set no_muls{2, 0, 1};
  for (const ss::scheduler_backend* backend : ss::registered_backends()) {
    const ss::backend_outcome r = run_once(*backend, d, lib, no_muls);
    EXPECT_FALSE(r.feasible) << backend->name();
    EXPECT_FALSE(r.infeasible_reason.empty()) << backend->name();
    EXPECT_EQ(r.latency, -1) << backend->name();
  }
}

TEST(SchedParity, FdsReportsUnreachableAllocationInsteadOfIllegalSchedule) {
  // This FDS implementation's one-level forces plateau at peak 2 on EWF,
  // so 2+/-,1* is unreachable for any budget: the backend must say so
  // rather than return a schedule violating the allocation.
  const si::resource_library lib;
  const si::dfg d = si::make_benchmark("ewf", lib);
  const ss::backend_outcome r =
      run_once(ss::get_backend("fds"), d, lib, si::figure3_constraint(2));
  EXPECT_FALSE(r.feasible);
  EXPECT_NE(r.infeasible_reason.find("peak usage exceeds"), std::string::npos);
}

TEST(SchedParity, FdsExplicitBudgetRunsOnceAndChecksTheAllocation) {
  const si::resource_library lib;
  const si::dfg d = si::make_benchmark("hal", lib);
  const si::resource_set rs = si::figure3_constraint(0);
  ss::backend_options opt;
  opt.fds_latency = 12; // comfortably above HAL's critical path of 6
  const ss::backend_outcome r = run_once(ss::get_backend("fds"), d, lib, rs, opt);
  ASSERT_TRUE(r.feasible) << r.infeasible_reason;
  EXPECT_EQ(r.latency, sh::validate_schedule(d, ss::to_hard_schedule(r), &rs).empty()
                           ? r.latency
                           : -1); // legal at the explicit budget
  EXPECT_LE(r.latency, 12);

  // A budget below the critical path is infeasible, not a throw.
  opt.fds_latency = 3;
  const ss::backend_outcome tight = run_once(ss::get_backend("fds"), d, lib, rs, opt);
  EXPECT_FALSE(tight.feasible);
  EXPECT_FALSE(tight.infeasible_reason.empty());
}

TEST(SchedParity, RepeatRunsAreBitIdenticalPerBackend) {
  const si::resource_library lib;
  const si::dfg d = si::make_benchmark("arf", lib);
  const si::resource_set rs = si::figure3_constraint(0);
  for (const ss::scheduler_backend* backend : ss::registered_backends()) {
    const ss::backend_outcome a = run_once(*backend, d, lib, rs);
    const ss::backend_outcome b = run_once(*backend, d, lib, rs);
    EXPECT_TRUE(a.same_outcome(b)) << backend->name();
  }
}

// -- the run_request/run_context API ----------------------------------------

TEST(SchedContext, OneContextReusedAcrossRunsMatchesFreshContexts) {
  // The per-worker reuse story: one context carried across designs,
  // allocations and backends (arena rewound between runs) must produce
  // exactly what a fresh context produces every time.
  const si::resource_library lib;
  ss::run_context shared;
  std::uint64_t expected_runs = 0;
  for (const char* name : named_benchmarks) {
    const si::dfg d = si::make_benchmark(name, lib);
    for (const int constraint : {0, 1}) {
      const si::resource_set rs = si::figure3_constraint(constraint);
      for (const ss::scheduler_backend* backend : ss::registered_backends()) {
        const ss::backend_outcome reused = backend->run({d, lib, rs, {}}, shared);
        const ss::backend_outcome fresh = run_once(*backend, d, lib, rs);
        EXPECT_TRUE(reused.same_outcome(fresh))
            << name << " " << rs.label() << " " << backend->name();
        ++expected_runs;
      }
    }
  }
  EXPECT_EQ(shared.runs(), expected_runs);
}

TEST(SchedContext, ArenaOffMatchesArenaOn) {
  // arena_mode::off is the cross-validated heap baseline: same outcome,
  // different memory source. Both contexts are reused across runs so the
  // comparison also covers steady-state reuse.
  const si::resource_library lib;
  ss::run_context with_arena(ss::arena_mode::on);
  ss::run_context heap(ss::arena_mode::off);
  ASSERT_TRUE(with_arena.arena_enabled());
  ASSERT_FALSE(heap.arena_enabled());
  EXPECT_EQ(heap.arena(), nullptr);
  for (const char* name : named_benchmarks) {
    const si::dfg d = si::make_benchmark(name, lib);
    const si::resource_set rs = si::figure3_constraint(0);
    for (const ss::scheduler_backend* backend : ss::registered_backends()) {
      const ss::backend_outcome a = backend->run({d, lib, rs, {}}, with_arena);
      const ss::backend_outcome h = backend->run({d, lib, rs, {}}, heap);
      EXPECT_TRUE(a.same_outcome(h)) << name << " " << backend->name();
    }
  }
  // The arena really was in play: blocks were carved and recycled.
  const softsched::util::arena_stats* st = with_arena.arena_stats();
  ASSERT_NE(st, nullptr);
  EXPECT_GT(st->allocations, 0u);
  EXPECT_GT(st->resets, 0u);
  EXPECT_EQ(heap.arena_stats(), nullptr);
}

TEST(SchedContext, SoftAccumulatesKernelStatsIntoTheContext) {
  const si::resource_library lib;
  const si::dfg d = si::make_benchmark("ewf", lib);
  const si::resource_set rs = si::figure3_constraint(0);
  ss::run_context ctx;
  const ss::backend_outcome once = ss::get_backend("soft").run({d, lib, rs, {}}, ctx);
  ASSERT_TRUE(once.feasible);
  EXPECT_EQ(ctx.totals.commits, once.stats.commits);
  (void)ss::get_backend("soft").run({d, lib, rs, {}}, ctx);
  EXPECT_EQ(ctx.totals.commits, 2 * once.stats.commits);
}

// -- the cache-key salt -----------------------------------------------------

TEST(SchedSalt, MetaEntersOnlyForMetaConsumingBackends) {
  constexpr sm::meta_kind metas[] = {sm::meta_kind::depth_first,
                                     sm::meta_kind::topological,
                                     sm::meta_kind::path_based,
                                     sm::meta_kind::list_priority};
  std::set<std::uint64_t> distinct;
  for (const ss::scheduler_backend* backend : ss::registered_backends()) {
    std::set<std::uint64_t> per_backend;
    for (const sm::meta_kind meta : metas) {
      const std::uint64_t salt = ss::backend_option_salt(*backend, meta);
      EXPECT_NE(salt, 0u);
      per_backend.insert(salt);
      distinct.insert(salt);
    }
    // Soft consumes the meta order, so every meta is a distinct schedule
    // and a distinct key; list/fds ignore it, so all metas share one cache
    // entry instead of scheduling identical results four times.
    EXPECT_EQ(per_backend.size(), backend->caps().uses_meta ? 4u : 1u)
        << backend->name();
  }
  EXPECT_EQ(distinct.size(), 6u); // 4 soft + 1 list + 1 fds, no collisions
  // The soft salts are the pre-registry meta salts (meta + 1): cache keys
  // for soft requests survived the refactor unchanged.
  EXPECT_EQ(ss::backend_option_salt(ss::get_backend("soft"),
                                    sm::meta_kind::depth_first),
            1u);
  EXPECT_EQ(ss::backend_option_salt(ss::get_backend("soft"),
                                    sm::meta_kind::list_priority),
            4u);
}

// -- serve ------------------------------------------------------------------

namespace {

std::vector<sv::response> collect(sv::engine& eng, const std::string& text) {
  std::istringstream in(text);
  return eng.run_collect(in);
}

} // namespace

TEST(SchedServe, IdenticalDesignsUnderDifferentBackendsGetDistinctKeys) {
  sv::engine eng;
  const std::vector<sv::response> rs = collect(
      eng, "{\"bench\":\"ewf\"}\n"
           "{\"bench\":\"ewf\",\"backend\":\"soft\"}\n"
           "{\"bench\":\"ewf\",\"backend\":\"list\"}\n"
           "{\"bench\":\"ewf\",\"backend\":\"fds\"}\n"
           "{\"bench\":\"ewf\",\"backend\":\"list\",\"meta\":\"dfs\"}\n");
  ASSERT_EQ(rs.size(), 5u);
  for (const sv::response& r : rs) ASSERT_TRUE(r.error.empty()) << r.error;
  // Default backend is soft: lines 1 and 2 share one key (and dedup).
  EXPECT_EQ(rs[0].key, rs[1].key);
  EXPECT_EQ(rs[0].backend, "soft");
  // Distinct backends never share a cache entry.
  EXPECT_NE(rs[1].key, rs[2].key);
  EXPECT_NE(rs[1].key, rs[3].key);
  EXPECT_NE(rs[2].key, rs[3].key);
  // The meta order is ignored by hard backends, so it does not fragment
  // their cache entries: list+dfs coalesces onto list+default.
  EXPECT_EQ(rs[4].key, rs[2].key);
  // And the schedules really came from different schedulers: the list
  // backend binds units, fds does not, soft carries kernel stats.
  EXPECT_EQ(rs[2].backend, "list");
  ASSERT_TRUE(rs[2].result.feasible);
  for (const int u : rs[2].result.unit_of) EXPECT_GE(u, 0);
  ASSERT_TRUE(rs[3].result.feasible);
  for (const int u : rs[3].result.unit_of) EXPECT_EQ(u, -1);
  EXPECT_GT(rs[0].result.stats.commits, 0u);
  EXPECT_EQ(rs[2].result.stats.commits, 0u);
}

TEST(SchedServe, UnknownBackendIsAFieldLevelParseError) {
  sv::engine eng;
  const std::vector<sv::response> rs =
      collect(eng, "{\"bench\":\"ewf\",\"backend\":\"threaded\"}\n");
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_NE(rs[0].error.find("backend"), std::string::npos);
  EXPECT_NE(rs[0].error.find("threaded"), std::string::npos);
  EXPECT_NE(rs[0].error.find("soft|list|fds"), std::string::npos);
}

TEST(SchedServe, MixedBackendStreamDeterministicAcrossJobsAndCacheSizes) {
  // The acceptance property with the backend axis mixed in: responses are
  // payload-identical for any worker count and any cache budget, on a
  // stream that interleaves backends, repeats designs across backends, and
  // includes an error line.
  std::string text;
  for (int i = 0; i < 3; ++i)
    for (const char* backend : {"soft", "list", "fds"})
      text += "{\"id\":\"q" + std::to_string(i) + std::string(backend) +
              "\",\"bench\":\"hal\",\"backend\":\"" + backend +
              "\",\"alus\":" + std::to_string(2 + i) + ",\"muls\":2}\n";
  text += "{\"bench\":\"ewf\",\"backend\":\"list\"}\n";
  text += "{\"bench\":\"ewf\",\"backend\":\"nope\"}\n";

  sv::engine_options ref_opt;
  ref_opt.jobs = 1;
  sv::engine reference(ref_opt);
  const std::vector<sv::response> ref = collect(reference, text);
  ASSERT_EQ(ref.size(), 11u);

  for (const int jobs : {1, 4}) {
    for (const std::size_t cache_bytes : {std::size_t{0}, std::size_t{64} << 20}) {
      sv::engine_options opt;
      opt.jobs = jobs;
      opt.cache_bytes = cache_bytes;
      sv::engine eng(opt);
      const std::vector<sv::response> got = collect(eng, text);
      ASSERT_EQ(got.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_TRUE(ref[i].same_payload(got[i]))
            << "jobs=" << jobs << " cache=" << cache_bytes << " line " << i + 1;
    }
  }

  // A hot re-run serves from the cache and still emits identical payloads.
  const std::vector<sv::response> hot = collect(reference, text);
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_TRUE(ref[i].same_payload(hot[i])) << "hot line " << i + 1;
  EXPECT_GT(reference.counters().cache_hits, 0u);
}

// -- explore ----------------------------------------------------------------

namespace {

se::grid_spec small_ewf_grid() {
  se::grid_spec spec;
  spec.design.bench = "ewf";
  spec.alus = {2, 3};
  spec.muls = {1, 2};
  spec.mems = {1, 1};
  spec.mul_latency = {2, 2};
  return spec;
}

} // namespace

TEST(SchedExplore, BackendAxisEmitsPerBackendFrontiers) {
  const se::grid_spec spec = small_ewf_grid();
  se::exploration_options opt;
  opt.jobs = 2;
  opt.backends = {"soft", "list"};
  const se::exploration_result r = se::run_exploration(spec, opt);

  ASSERT_EQ(r.backends, (std::vector<std::string>{"soft", "list"}));
  const std::size_t grid = se::point_count(spec);
  ASSERT_EQ(r.points.size(), 2 * grid);
  ASSERT_EQ(r.frontiers.size(), 2u);
  EXPECT_EQ(r.frontier, r.frontiers[0]);
  EXPECT_FALSE(r.frontiers[0].empty());
  EXPECT_FALSE(r.frontiers[1].empty());
  // Backend-major blocks: grid order repeats per backend, frontier indices
  // stay inside their backend's block.
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    EXPECT_EQ(r.points[i].backend, i < grid ? "soft" : "list");
    EXPECT_EQ(r.points[i].point.index, static_cast<int>(i % grid));
  }
  for (const int i : r.frontiers[0]) EXPECT_LT(static_cast<std::size_t>(i), grid);
  for (const int i : r.frontiers[1]) {
    EXPECT_GE(static_cast<std::size_t>(i), grid);
    EXPECT_LT(static_cast<std::size_t>(i), 2 * grid);
  }
}

TEST(SchedExplore, BackendAxisDeterministicAcrossWorkerCounts) {
  const se::grid_spec spec = small_ewf_grid();
  se::exploration_options one;
  one.jobs = 1;
  one.backends = {"soft", "list", "fds"};
  se::exploration_options eight = one;
  eight.jobs = 8;
  const se::exploration_result a = se::run_exploration(spec, one);
  const se::exploration_result b = se::run_exploration(spec, eight);
  EXPECT_TRUE(a.same_outcome(b));
}

TEST(SchedExplore, DefaultOptionsStaySoftOnly) {
  const se::grid_spec spec = small_ewf_grid();
  const se::exploration_result r = se::run_exploration(spec, {.jobs = 2});
  EXPECT_EQ(r.backends, std::vector<std::string>{"soft"});
  ASSERT_EQ(r.frontiers.size(), 1u);
  EXPECT_EQ(r.frontier, r.frontiers[0]);
  for (const se::point_result& p : r.points) EXPECT_EQ(p.backend, "soft");
}

TEST(SchedExplore, UnknownBackendThrowsBeforeAnyPointRuns) {
  se::exploration_options opt;
  opt.backends = {"soft", "annealer"};
  EXPECT_THROW((void)se::run_exploration(small_ewf_grid(), opt), precondition_error);
}

TEST(SchedExplore, DuplicateBackendThrows) {
  // A repeated name would double the grid and emit a report whose
  // "frontiers" object carries the same key twice - invalid JSON by the
  // repo's own strict-parser contract.
  se::exploration_options opt;
  opt.backends = {"soft", "list", "soft"};
  EXPECT_THROW((void)se::run_exploration(small_ewf_grid(), opt), precondition_error);
}
