// dfg_hash_test.cpp - the canonical content digest behind the schedule
// cache: invariance under vertex renumbering and dfg_io round trips,
// sensitivity to every input the scheduler's outcome depends on (edges,
// kinds, delays, allocation, options), and the canonical topological
// order itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "ir/benchmarks.h"
#include "ir/dfg_hash.h"
#include "ir/dfg_io.h"

namespace si = softsched::ir;
namespace sg = softsched::graph;
using sg::vertex_id;

namespace {

/// A small non-trivial DFG: two multiply chains feeding an add reduction
/// with a memory access. Built in two different (both topological)
/// insertion orders by the renumbering test.
si::dfg make_reference(const si::resource_library& lib) {
  si::dfg d("ref", lib);
  const auto a = d.add_op(si::op_kind::load, {}, "a");
  const auto b = d.add_op(si::op_kind::mul, {a}, "b");
  const auto c = d.add_op(si::op_kind::mul, {a}, "c");
  const auto e = d.add_op(si::op_kind::add, {b, c}, "e");
  const auto f = d.add_op(si::op_kind::sub, {c}, "f");
  d.add_op(si::op_kind::store, {e, f}, "g");
  return d;
}

/// The same graph with vertices created in a different topological order
/// (and different names), so every vertex id differs from make_reference.
si::dfg make_renumbered(const si::resource_library& lib) {
  si::dfg d("other", lib);
  const auto a = d.add_op(si::op_kind::load, {}, "x0");
  const auto c = d.add_op(si::op_kind::mul, {a}, "x1"); // c before b this time
  const auto f = d.add_op(si::op_kind::sub, {c}, "x2"); // f early
  const auto b = d.add_op(si::op_kind::mul, {a}, "x3");
  const auto e = d.add_op(si::op_kind::add, {b, c}, "x4");
  d.add_op(si::op_kind::store, {e, f}, "x5");
  return d;
}

} // namespace

TEST(DfgHash, RenumberingInvariance) {
  const si::resource_library lib;
  const si::dfg a = make_reference(lib);
  const si::dfg b = make_renumbered(lib);
  EXPECT_EQ(si::canonical_dfg_digest(a), si::canonical_dfg_digest(b));
}

TEST(DfgHash, NamesDoNotParticipate) {
  const si::resource_library lib;
  si::dfg a("n1", lib);
  a.add_op(si::op_kind::add, {}, "first");
  si::dfg b("n2", lib);
  b.add_op(si::op_kind::add, {}, "completely_different");
  EXPECT_EQ(si::canonical_dfg_digest(a), si::canonical_dfg_digest(b));
}

TEST(DfgHash, DfgIoRoundTripPreservesDigest) {
  const si::resource_library lib;
  for (const char* name : {"ewf", "hal", "arf", "fir16", "iir8"}) {
    const si::dfg original = si::make_benchmark(name, lib);
    std::ostringstream text;
    si::write_dfg(text, original);
    const si::dfg reloaded = si::read_dfg_string(text.str(), lib);
    EXPECT_EQ(si::canonical_dfg_digest(original), si::canonical_dfg_digest(reloaded))
        << name;
  }
}

TEST(DfgHash, ExtraEdgeChangesDigest) {
  const si::resource_library lib;
  si::dfg a = make_reference(lib);
  si::dfg b = make_reference(lib);
  // b -> f: a new dependence between existing operations.
  b.add_dependence(vertex_id(1), vertex_id(4));
  EXPECT_NE(si::canonical_dfg_digest(a), si::canonical_dfg_digest(b));
}

TEST(DfgHash, KindChangesDigest) {
  const si::resource_library lib;
  si::dfg a("k", lib);
  a.add_op(si::op_kind::add, {});
  si::dfg b("k", lib);
  b.add_op(si::op_kind::sub, {}); // same class and latency, different kind
  EXPECT_NE(si::canonical_dfg_digest(a), si::canonical_dfg_digest(b));
}

TEST(DfgHash, LibraryLatencyChangesDigest) {
  const si::resource_library standard;
  si::resource_library slow_mul;
  slow_mul.set_latency(si::op_kind::mul, 3);
  const si::dfg a = si::make_fir8(standard);
  const si::dfg b = si::make_fir8(slow_mul);
  EXPECT_NE(si::canonical_dfg_digest(a), si::canonical_dfg_digest(b));
}

TEST(DfgHash, WireDelayChangesDigest) {
  const si::resource_library lib;
  si::dfg a("w", lib);
  const auto a0 = a.add_op(si::op_kind::add, {});
  a.add_wire(1, {a0});
  si::dfg b("w", lib);
  const auto b0 = b.add_op(si::op_kind::add, {});
  b.add_wire(2, {b0});
  EXPECT_NE(si::canonical_dfg_digest(a), si::canonical_dfg_digest(b));
}

TEST(DfgHash, DistinguishesChainFromFanout) {
  // Same vertex multiset (three adds), different edge relation.
  const si::resource_library lib;
  si::dfg chain("c", lib);
  const auto c0 = chain.add_op(si::op_kind::add, {});
  const auto c1 = chain.add_op(si::op_kind::add, {c0});
  chain.add_op(si::op_kind::add, {c1});
  si::dfg fanout("f", lib);
  const auto f0 = fanout.add_op(si::op_kind::add, {});
  fanout.add_op(si::op_kind::add, {f0});
  fanout.add_op(si::op_kind::add, {f0});
  EXPECT_NE(si::canonical_dfg_digest(chain), si::canonical_dfg_digest(fanout));
}

TEST(DfgHash, ScheduleKeySensitiveToAllocationAndSalt) {
  const si::resource_library lib;
  const si::dfg d = si::make_ewf(lib);
  const si::dfg_digest digest = si::canonical_dfg_digest(d);
  const si::dfg_digest base = si::schedule_key(digest, {2, 2, 1}, 1);
  EXPECT_NE(base, si::schedule_key(digest, {3, 2, 1}, 1));
  EXPECT_NE(base, si::schedule_key(digest, {2, 3, 1}, 1));
  EXPECT_NE(base, si::schedule_key(digest, {2, 2, 2}, 1));
  EXPECT_NE(base, si::schedule_key(digest, {2, 2, 1}, 2));
  EXPECT_EQ(base, si::schedule_key(d, {2, 2, 1}, 1)); // overloads agree
}

TEST(DfgHash, CanonicalOrderIsATopologicalPermutation) {
  const si::resource_library lib;
  for (const char* name : {"ewf", "arf"}) {
    const si::dfg d = si::make_benchmark(name, lib);
    const std::vector<vertex_id> order = si::canonical_topo_order(d);
    ASSERT_EQ(order.size(), d.op_count()) << name;
    std::vector<std::size_t> position(order.size());
    std::vector<bool> seen(order.size(), false);
    for (std::size_t i = 0; i < order.size(); ++i) {
      ASSERT_LT(order[i].value(), order.size()) << name;
      EXPECT_FALSE(seen[order[i].value()]) << name;
      seen[order[i].value()] = true;
      position[order[i].value()] = i;
    }
    for (const vertex_id v : d.graph().vertices())
      for (const vertex_id s : d.graph().succs(v))
        EXPECT_LT(position[v.value()], position[s.value()]) << name;
  }
}

TEST(DfgHash, CanonicalOrderMatchesAcrossRenumbering) {
  // Not just the digest: the canonical *record sequence* must agree, which
  // shows as identical kind sequences along the canonical order.
  const si::resource_library lib;
  const si::dfg a = make_reference(lib);
  const si::dfg b = make_renumbered(lib);
  const auto ka = si::canonical_topo_order(a);
  const auto kb = si::canonical_topo_order(b);
  ASSERT_EQ(ka.size(), kb.size());
  for (std::size_t i = 0; i < ka.size(); ++i)
    EXPECT_EQ(a.kind(ka[i]), b.kind(kb[i])) << "position " << i;
}

TEST(DfgHash, HexIs32LowercaseChars) {
  const si::dfg_digest d{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(d.hex(), "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(si::dfg_digest{}.hex(), std::string(32, '0'));
}

TEST(DfgHash, DigestIsStableAcrossRuns) {
  // Content addressing must be reproducible across processes: the digest
  // is pure arithmetic, no pointers or ASLR-dependent state.
  const si::resource_library lib;
  const si::dfg d = si::make_ewf(lib);
  const si::dfg_digest x = si::canonical_dfg_digest(d);
  const si::dfg_digest y = si::canonical_dfg_digest(si::make_ewf(lib));
  EXPECT_EQ(x, y);
  EXPECT_NE(x, si::dfg_digest{});
}

TEST(DfgHash, RefinementSeparatesSignatureEqualNonAutomorphicVertices) {
  // The 1-WL blind spot a pure cone-hash signature has: p1 (load) feeds x
  // (add) and z (sub); p2 (load) feeds only y (add). x and y have equal
  // forward hashes (their pred *cone hashes* agree at depth 0) and equal
  // backward hashes (no successors), yet no automorphism maps x to y - the
  // digest must still be invariant when the renumbering swaps x and y,
  // which requires the iterated refinement rounds to separate them via
  // their (distinguishable) predecessors.
  const si::resource_library lib;
  si::dfg a("wl", lib);
  {
    const auto p1 = a.add_op(si::op_kind::load, {});
    const auto p2 = a.add_op(si::op_kind::load, {});
    a.add_op(si::op_kind::add, {p1}); // x
    a.add_op(si::op_kind::sub, {p1}); // z
    a.add_op(si::op_kind::add, {p2}); // y
  }
  si::dfg b("wl", lib);
  {
    const auto p2 = b.add_op(si::op_kind::load, {});
    const auto p1 = b.add_op(si::op_kind::load, {});
    b.add_op(si::op_kind::add, {p2}); // y first this time
    b.add_op(si::op_kind::add, {p1}); // x
    b.add_op(si::op_kind::sub, {p1}); // z
  }
  EXPECT_EQ(si::canonical_dfg_digest(a), si::canonical_dfg_digest(b));
}

TEST(DfgHash, CanonicalFormIsIdempotentAndDigestPreserving) {
  const si::resource_library lib;
  for (const char* name : {"ewf", "hal", "fir16"}) {
    const si::dfg d = si::make_benchmark(name, lib);
    const auto order = si::canonical_topo_order(d);
    const si::dfg canon = si::canonical_form(d, order, lib);
    EXPECT_EQ(si::canonical_dfg_digest(canon), si::canonical_dfg_digest(d)) << name;
    // Canonicalizing a canonical form is the identity renumbering.
    const auto order2 = si::canonical_topo_order(canon);
    for (std::size_t i = 0; i < order2.size(); ++i)
      EXPECT_EQ(order2[i].value(), i) << name;
  }
}
