#include "hard/list_scheduler.h"

#include <algorithm>
#include <limits>

#include "graph/distances.h"
#include "util/check.h"

namespace softsched::hard {

schedule list_schedule(const ir::dfg& d, const ir::resource_set& resources) {
  const auto& g = d.graph();
  for (const ir::resource_class cls :
       {ir::resource_class::alu, ir::resource_class::multiplier,
        ir::resource_class::memory_port}) {
    if (d.count_class(cls) > 0 && resources.count(cls) == 0)
      throw infeasible_error(d.name() + " needs at least one " +
                             std::string(ir::class_name(cls)) + " unit");
  }

  const graph::distance_labels labels = graph::compute_distances(g);
  const std::size_t n = g.vertex_count();

  schedule s;
  s.start.assign(n, -1);
  s.unit.assign(n, -1);

  // Unit pool: per class, the cycle at which each instance becomes free.
  // Unit indices are globally numbered the same way the HLS thread binding
  // numbers threads: ALUs first, then multipliers, then memory ports.
  std::vector<long long> unit_free;
  int class_base[ir::resource_class_count] = {0, 0, 0, 0};
  auto add_units = [&unit_free](int count) {
    const int base = static_cast<int>(unit_free.size());
    unit_free.insert(unit_free.end(), static_cast<std::size_t>(count), 0);
    return base;
  };
  class_base[static_cast<int>(ir::resource_class::alu)] = add_units(resources.alus);
  class_base[static_cast<int>(ir::resource_class::multiplier)] =
      add_units(resources.multipliers);
  class_base[static_cast<int>(ir::resource_class::memory_port)] =
      add_units(resources.memory_ports);

  std::vector<std::size_t> unscheduled_preds(n);
  std::vector<vertex_id> ready;
  for (const vertex_id v : g.vertices()) {
    unscheduled_preds[v.value()] = g.preds(v).size();
    if (g.preds(v).empty()) ready.push_back(v);
  }
  auto priority_less = [&labels](vertex_id a, vertex_id b) {
    // Higher sink distance first; ties by id for determinism.
    if (labels.tdist[a.value()] != labels.tdist[b.value()])
      return labels.tdist[a.value()] > labels.tdist[b.value()];
    return a < b;
  };

  std::size_t scheduled = 0;
  long long cycle = 0;
  while (scheduled < n) {
    std::sort(ready.begin(), ready.end(), priority_less);
    std::vector<vertex_id> deferred;
    std::vector<vertex_id> finished_now;
    for (const vertex_id v : ready) {
      // Data-ready time.
      long long earliest = 0;
      for (const vertex_id p : g.preds(v))
        earliest = std::max(earliest, s.start[p.value()] + g.delay(p));
      if (earliest > cycle) {
        deferred.push_back(v);
        continue;
      }
      const ir::resource_class cls = d.unit_class(v);
      if (cls == ir::resource_class::wire) {
        // Dedicated interconnect: no unit contention.
        s.start[v.value()] = cycle;
      } else {
        const int base = class_base[static_cast<int>(cls)];
        const int count = resources.count(cls);
        int chosen = -1;
        for (int u = 0; u < count; ++u) {
          if (unit_free[static_cast<std::size_t>(base + u)] <= cycle) {
            chosen = base + u;
            break;
          }
        }
        if (chosen < 0) {
          deferred.push_back(v); // all units of the class busy this cycle
          continue;
        }
        unit_free[static_cast<std::size_t>(chosen)] = cycle + g.delay(v);
        s.start[v.value()] = cycle;
        s.unit[v.value()] = chosen;
      }
      ++scheduled;
      s.makespan = std::max(s.makespan, cycle + g.delay(v));
      finished_now.push_back(v);
    }
    for (const vertex_id v : finished_now)
      for (const vertex_id w : g.succs(v))
        if (--unscheduled_preds[w.value()] == 0) deferred.push_back(w);
    ready = std::move(deferred);
    ++cycle;
    SOFTSCHED_EXPECT(cycle < std::numeric_limits<long long>::max() / 2,
                     "list scheduler failed to converge");
  }
  return s;
}

} // namespace softsched::hard
