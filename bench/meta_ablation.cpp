// meta_ablation - Section 5's observation quantified: "in practice, many
// meta schedules can lead to results comparable to the traditional list
// scheduler". For each benchmark we run the four deterministic meta
// schedules plus a population of random permutations and report the
// distribution (min / median / max) of threaded schedule lengths against
// the list-scheduler reference.
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/hls_binding.h"
#include "core/threaded_graph.h"
#include "hard/list_scheduler.h"
#include "ir/benchmarks.h"
#include "meta/meta_schedule.h"
#include "util/rng.h"
#include "util/table.h"

namespace sc = softsched::core;
namespace si = softsched::ir;
namespace sh = softsched::hard;
namespace sm = softsched::meta;
using softsched::rng;

namespace {

long long run_order(const si::dfg& d, const si::resource_set& rs,
                    const std::vector<softsched::graph::vertex_id>& order) {
  sc::threaded_graph state = sc::make_hls_state(d, rs);
  state.schedule_all(order);
  return state.diameter();
}

} // namespace

int main() {
  const si::resource_library lib;
  const si::resource_set rs = si::figure3_constraint(0);
  constexpr int random_samples = 50;

  std::cout << "Meta-schedule sensitivity (resource set " << rs.label() << ", "
            << random_samples << " random orders per benchmark)\n\n";
  softsched::table tbl;
  tbl.set_header({"BM", "list", "meta1", "meta2", "meta3", "meta4", "rand min",
                  "rand med", "rand max"});

  for (const si::dfg& d : si::figure3_benchmarks(lib)) {
    std::vector<std::string> row{d.name()};
    row.push_back(softsched::cell(sh::list_schedule(d, rs).makespan));
    for (const sm::meta_kind kind : sm::figure3_meta_kinds)
      row.push_back(softsched::cell(run_order(d, rs, sm::meta_schedule(d.graph(), kind))));

    rng rand(0xab1e + d.op_count());
    std::vector<long long> samples;
    for (int i = 0; i < random_samples; ++i)
      samples.push_back(run_order(d, rs, sm::random_meta_schedule(d.graph(), rand)));
    std::sort(samples.begin(), samples.end());
    row.push_back(softsched::cell(samples.front()));
    row.push_back(softsched::cell(samples[samples.size() / 2]));
    row.push_back(softsched::cell(samples.back()));
    tbl.add_row(row);
  }
  tbl.print(std::cout);
  std::cout << "\nInterpretation: informed meta orders track the list scheduler;\n"
               "even random permutations stay correct (soft scheduling is\n"
               "order-independent for correctness, order-sensitive for quality).\n";
  return 0;
}
