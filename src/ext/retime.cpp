#include "ext/retime.h"

#include <optional>
#include <string>

#include "core/hls_binding.h"
#include "core/threaded_graph.h"
#include "meta/meta_schedule.h"
#include "util/check.h"

namespace softsched::ext {

namespace {

int retimed_weight(const retime_problem::edge& e, const std::vector<int>& r) {
  return e.weight + r[static_cast<std::size_t>(e.to)] - r[static_cast<std::size_t>(e.from)];
}

long long body_latency(const retime_problem& p, const std::vector<int>& r,
                       const ir::resource_set& resources,
                       const ir::resource_library& library) {
  const ir::dfg body = body_dfg(p, r, library);
  core::threaded_graph state = core::make_hls_state(body, resources);
  state.schedule_all(meta::meta_schedule(body.graph(), meta::meta_kind::list_priority));
  return state.diameter();
}

} // namespace

bool valid_retiming(const retime_problem& p, const std::vector<int>& r) {
  if (r.size() != p.ops.size()) return false;
  for (const auto& e : p.edges)
    if (retimed_weight(e, r) < 0) return false;
  // Zero-weight subgraph must be acyclic (Kahn).
  const std::size_t n = p.ops.size();
  std::vector<int> degree(n, 0);
  for (const auto& e : p.edges)
    if (retimed_weight(e, r) == 0) ++degree[static_cast<std::size_t>(e.to)];
  std::vector<int> order;
  order.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    if (degree[i] == 0) order.push_back(static_cast<int>(i));
  for (std::size_t head = 0; head < order.size(); ++head)
    for (const auto& e : p.edges)
      if (e.from == order[head] && retimed_weight(e, r) == 0)
        if (--degree[static_cast<std::size_t>(e.to)] == 0) order.push_back(e.to);
  return order.size() == n;
}

ir::dfg body_dfg(const retime_problem& p, const std::vector<int>& r,
                 const ir::resource_library& library) {
  SOFTSCHED_EXPECT(valid_retiming(p, r), "body_dfg needs a valid retiming");
  ir::dfg body("retimed_body", library);
  std::vector<graph::vertex_id> ids;
  ids.reserve(p.ops.size());
  for (std::size_t i = 0; i < p.ops.size(); ++i)
    ids.push_back(body.add_op(p.ops[i], {}, std::string("o") += std::to_string(i)));
  for (const auto& e : p.edges)
    if (retimed_weight(e, r) == 0)
      body.add_dependence(ids[static_cast<std::size_t>(e.from)],
                          ids[static_cast<std::size_t>(e.to)]);
  return body;
}

namespace {

/// FEAS-style feasibility check (Leiserson & Saxe, adapted to
/// resource-constrained schedule length): does some retiming achieve a
/// body schedule of at most `target` cycles? Starting from the identity,
/// every vertex finishing after the target in the scheduled body gets its
/// lag incremented - pulling a register across it from its fan-in - and
/// the body is rescheduled. Classic FEAS needs |V|-1 rounds for the
/// unconstrained clock-period problem; the resource-constrained variant
/// gets a 3|V| budget before the target is declared unachievable.
std::optional<std::vector<int>> feasible_retiming(const retime_problem& p,
                                                  const ir::resource_set& resources,
                                                  const ir::resource_library& library,
                                                  long long target) {
  std::vector<int> r(p.ops.size(), 0);
  const std::size_t probe_rounds = 3 * p.ops.size() + 4;
  for (std::size_t round = 0; round <= probe_rounds; ++round) {
    if (!valid_retiming(p, r)) return std::nullopt;
    const ir::dfg body = body_dfg(p, r, library);
    core::threaded_graph state = core::make_hls_state(body, resources);
    state.schedule_all(meta::meta_schedule(body.graph(), meta::meta_kind::list_priority));
    if (state.diameter() <= target) return r;
    const std::vector<long long> start = state.asap_start_times();
    bool moved = false;
    for (std::size_t v = 0; v < p.ops.size(); ++v) {
      const graph::vertex_id id(static_cast<std::uint32_t>(v));
      if (start[v] + body.graph().delay(id) > target) {
        ++r[v];
        moved = true;
      }
    }
    if (!moved) return std::nullopt;
  }
  return std::nullopt;
}

} // namespace

retime_result retime_min_latency(const retime_problem& p, const ir::resource_set& resources,
                                 const ir::resource_library& library, int max_rounds) {
  retime_result result;
  result.r.assign(p.ops.size(), 0);
  SOFTSCHED_EXPECT(valid_retiming(p, result.r), "identity retiming must be valid");

  result.latency_before = body_latency(p, result.r, resources, library);
  result.latency_after = result.latency_before;

  // Tighten the target one cycle at a time; each FEAS probe either proves
  // the target achievable (and hands back the retiming) or we stop at the
  // last achievable one.
  long long target = result.latency_before - 1;
  for (int round = 0; round < max_rounds && target >= 1; ++round, --target) {
    const auto r = feasible_retiming(p, resources, library, target);
    if (!r.has_value()) break;
    result.r = *r;
    // The achieved latency can undershoot the target; record the measured
    // value and continue tightening from there.
    result.latency_after = body_latency(p, result.r, resources, library);
    result.rounds = round + 1;
    target = std::min(target, result.latency_after);
  }
  return result;
}

retime_problem make_correlator(int taps) {
  SOFTSCHED_EXPECT(taps >= 1, "correlator needs at least one tap");
  retime_problem p;
  // Vertex numbering: 0 = host, 1..taps = comparators, taps+1..2*taps = adders.
  p.ops.push_back(ir::op_kind::add); // host
  for (int i = 0; i < taps; ++i) p.ops.push_back(ir::op_kind::compare);
  for (int i = 0; i < taps; ++i) p.ops.push_back(ir::op_kind::add);
  const auto comparator = [](int i) { return 1 + i; };
  const auto adder = [taps](int i) { return 1 + taps + i; };
  // Registered delay line: host -> c0 -> c1 -> ... The host edge carries
  // two registers (input buffering) so every cycle through the
  // accumulation chain has weight >= 2 - i.e. retiming has registers to
  // move into the combinational adder chain. (With weight 1 the ring's
  // delay-to-register ratio would pin the body at its full length and no
  // retiming could improve it.)
  p.edges.push_back({0, comparator(0), 2});
  for (int i = 0; i + 1 < taps; ++i) p.edges.push_back({comparator(i), comparator(i + 1), 1});
  // Combinational accumulation: c_i -> a_i -> a_{i+1} -> ... -> host.
  for (int i = 0; i < taps; ++i) p.edges.push_back({comparator(i), adder(i), 0});
  for (int i = 0; i + 1 < taps; ++i) p.edges.push_back({adder(i), adder(i + 1), 0});
  p.edges.push_back({adder(taps - 1), 0, 0});
  return p;
}

} // namespace softsched::ext
