// refinement - the phase-coupling ablation (the paper's motivating
// scenarios, Section 1): after spill-code or wire-delay refinements,
// compare
//
//   soft flow:  refine the live threaded schedule incrementally
//   hard flow:  apply the same DFG refinement and rerun list scheduling
//               from scratch
//
// on schedule quality (states) and wall time. The soft flow's promise is
// parity-quality results without the from-scratch iteration.
#include <chrono>
#include <iostream>

#include "core/hls_binding.h"
#include "core/threaded_graph.h"
#include "hard/extract.h"
#include "hard/list_scheduler.h"
#include "ir/benchmarks.h"
#include "meta/meta_schedule.h"
#include "phys/floorplan.h"
#include "phys/wire_model.h"
#include "refine/refinement.h"
#include "regalloc/lifetime.h"
#include "regalloc/spill.h"
#include "util/table.h"

namespace sc = softsched::core;
namespace si = softsched::ir;
namespace sh = softsched::hard;
namespace sm = softsched::meta;
namespace sp = softsched::phys;
namespace sr = softsched::regalloc;
namespace sf = softsched::refine;
using softsched::graph::vertex_id;

namespace {

double micros(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct flow_outcome {
  long long soft_states = 0;
  long long hard_states = 0;
  double soft_us = 0;
  double hard_us = 0;
  std::size_t ops_inserted = 0;
};

/// Spill scenario: tighten the register budget by 2 and refine.
flow_outcome spill_flow(const si::dfg& base, const si::resource_set& rs) {
  flow_outcome out;

  si::dfg soft_dfg = base;
  sc::threaded_graph state = sc::make_hls_state(soft_dfg, rs);
  state.schedule_all(sm::meta_schedule(soft_dfg.graph(), sm::meta_kind::list_priority));
  sh::schedule provisional = sh::extract_schedule(state);
  const auto lifetimes = sr::compute_lifetimes(soft_dfg, provisional);
  const int budget = std::max(sr::min_spillable_demand(soft_dfg, lifetimes),
                              sr::max_live(lifetimes) - 1);
  const sr::spill_plan plan = sr::choose_spills(soft_dfg, lifetimes, budget);

  const auto t0 = std::chrono::steady_clock::now();
  for (const vertex_id v : plan.values) {
    const auto report = sf::apply_spill(soft_dfg, state, v);
    out.ops_inserted += report.ops_inserted;
  }
  out.soft_states = state.diameter();
  out.soft_us = micros(t0);

  si::dfg hard_dfg = base;
  const auto t1 = std::chrono::steady_clock::now();
  for (const vertex_id v : plan.values) sf::insert_spill_ops(hard_dfg, v);
  out.hard_states = sh::list_schedule(hard_dfg, rs).makespan;
  out.hard_us = micros(t1);
  return out;
}

/// Wire scenario: spread floorplan, aggressive wire model.
flow_outcome wire_flow(const si::dfg& base, const si::resource_set& rs) {
  flow_outcome out;

  si::dfg soft_dfg = base;
  sc::threaded_graph state = sc::make_hls_state(soft_dfg, rs);
  state.schedule_all(sm::meta_schedule(soft_dfg.graph(), sm::meta_kind::list_priority));
  const sh::schedule bound = sh::extract_schedule(state);
  const int units = rs.alus + rs.multipliers + rs.memory_ports;
  const sp::floorplan plan(units, 2, 4);
  const sp::wire_model model{3, 0.5};
  const auto insertions = sp::plan_wire_insertions(soft_dfg, bound, plan, model);

  const auto t0 = std::chrono::steady_clock::now();
  const auto report = sf::apply_wire_insertions(soft_dfg, state, insertions);
  out.ops_inserted = report.ops_inserted;
  out.soft_states = state.diameter();
  out.soft_us = micros(t0);

  // Hard flow: same wire vertices on a fresh DFG, full reschedule.
  si::dfg hard_dfg = base;
  const auto t1 = std::chrono::steady_clock::now();
  for (const auto& w : insertions) sf::insert_wire_op(hard_dfg, w.from, w.to, w.delay);
  out.hard_states = sh::list_schedule(hard_dfg, rs).makespan;
  out.hard_us = micros(t1);
  return out;
}

} // namespace

int main() {
  const si::resource_library lib;
  const si::resource_set rs = si::figure3_constraint(0);

  std::cout << "Phase-coupling ablation: incremental soft refinement vs.\n"
            << "from-scratch hard reschedule (resource set " << rs.label() << ")\n\n";

  for (const auto& [label, flow] :
       {std::pair<const char*, flow_outcome (*)(const si::dfg&, const si::resource_set&)>{
            "spill refinement (register budget = demand - 1)", &spill_flow},
        {"wire refinement (spread floorplan)", &wire_flow}}) {
    softsched::table tbl;
    tbl.set_header({"BM", "ops added", "soft states", "hard states", "soft us",
                    "hard us"});
    for (const si::dfg& d : si::figure3_benchmarks(lib)) {
      const flow_outcome out = flow(d, rs);
      tbl.add_row({d.name(), softsched::cell(static_cast<long long>(out.ops_inserted)),
                   softsched::cell(out.soft_states), softsched::cell(out.hard_states),
                   softsched::cell(out.soft_us, 1), softsched::cell(out.hard_us, 1)});
    }
    std::cout << label << ":\n";
    tbl.print(std::cout);
    std::cout << '\n';
  }
  std::cout
      << "soft = incremental update of the live threaded schedule;\n"
         "hard = DFG refinement + full list-scheduler rerun.\n"
         "Note the hard rerun is an optimistic comparator: it re-binds every\n"
         "operation, so for the wire scenario its schedule no longer matches\n"
         "the floorplan the wire delays came from - in a real flow it would\n"
         "have to iterate place & route (the paper's phase-coupling loop),\n"
         "which is exactly the cost the soft flow avoids.\n";
  return 0;
}
