// dfg_hash.h - content-addressed identity for scheduling inputs: a
// canonical 128-bit digest of a dataflow graph that is invariant under
// vertex renumbering, plus the cache key that extends it with the resource
// allocation and scheduler options.
//
// Equal digests identify isomorphic kind/delay-labelled DAGs modulo a
// ~2^-64 hash collision: the digest is computed over a *canonical
// topological order* derived purely from structure (iterated bidirectional
// Weisfeiler-Leman refinement seeded with full predecessor/successor-cone
// hashes), never from vertex ids or diagnostic names. This is what lets
// the batch scheduling service (src/serve) recognize "the same design
// submitted again" regardless of how the client happened to number or name
// its operations - an inline .dfg upload, a built-in benchmark, and a
// seeded random design all unify when their graphs match.
//
// Failure directions are asymmetric by construction. Distinct graphs
// colliding into one digest is the 2^-64 accident every content-addressed
// store accepts. The reverse - isomorphic graphs digesting differently -
// can additionally happen for vertices the refinement cannot separate
// (WL-equivalent asymmetries, which do not arise from practical dataflow
// shapes); that direction degrades to a spurious cache miss, never to a
// wrong schedule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/dfg.h"

namespace softsched::ir {

/// 128-bit content digest. Comparable, hashable, hex-printable.
struct dfg_digest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend constexpr bool operator==(const dfg_digest&, const dfg_digest&) = default;
  friend constexpr auto operator<=>(const dfg_digest&, const dfg_digest&) = default;

  /// 32 lowercase hex characters (hi then lo).
  [[nodiscard]] std::string hex() const;
};

/// Hash functor for unordered containers keyed by dfg_digest.
struct dfg_digest_hash {
  [[nodiscard]] std::size_t operator()(const dfg_digest& d) const noexcept {
    return static_cast<std::size_t>(d.hi ^ (d.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// The canonical topological order behind the digest: Kahn's algorithm
/// with the ready set sorted by a structural signature - each vertex's
/// kind, delay and full predecessor/successor-cone hashes, sharpened by
/// iterated bidirectional Weisfeiler-Leman rounds until the signature
/// partition stabilizes. Ties are broken by vertex id, safe because
/// signature-equal ready vertices are automorphic images of each other for
/// any graph the refinement separates (see the header comment for the
/// remaining theoretical caveat). Renumbering the graph permutes the
/// returned ids but not the sequence of (kind, delay,
/// canonical-predecessor-set) records the digest consumes. Throws
/// graph_error on a cyclic graph.
[[nodiscard]] std::vector<graph::vertex_id> canonical_topo_order(const dfg& d);

/// Structural digest of the DFG: kinds, delays (as baked from the resource
/// library, so latency variants change the digest) and the edge relation in
/// canonical order. Diagnostic vertex names do not participate.
[[nodiscard]] dfg_digest canonical_dfg_digest(const dfg& d);

/// Same digest from a precomputed canonical order (one canonicalization
/// shared between digesting and canonical_form on the serve hot path).
[[nodiscard]] dfg_digest
canonical_dfg_digest(const dfg& d, const std::vector<graph::vertex_id>& canonical_order);

/// Rebuilds `d` with vertices renumbered into canonical order: vertex i of
/// the result is canonical_order[i] of the source (names dropped, delays
/// copied exactly). Isomorphic inputs rebuild identical labelled graphs,
/// which is what lets the serve engine *schedule in canonical space*: the
/// cached outcome is a pure function of the isomorphism class, and every
/// renumbered submission receives it permuted into its own numbering.
[[nodiscard]] dfg canonical_form(const dfg& d,
                                 const std::vector<graph::vertex_id>& canonical_order,
                                 const resource_library& library);

/// Extends a structural digest into a schedule-cache key: mixes in the
/// resource allocation and an opaque option salt (the serve engine passes
/// the meta-schedule kind). Everything the threaded scheduler's outcome
/// depends on - graph, delays, unit counts, feed order - lands in the key.
[[nodiscard]] dfg_digest schedule_key(const dfg_digest& digest,
                                      const resource_set& resources,
                                      std::uint64_t option_salt);

/// Convenience overload: digest + key in one call.
[[nodiscard]] dfg_digest schedule_key(const dfg& d, const resource_set& resources,
                                      std::uint64_t option_salt);

} // namespace softsched::ir
