// transport.h - the stream layer of the resident scheduling daemon
// (`softsched_cli --serve`): a transport-agnostic duplex byte stream, a
// listener that accepts such streams, and the frame codec that runs over
// them. One frame carries one JSONL payload in either direction:
//
//   <decimal byte count>\n<payload bytes>\n
//
// The count covers exactly the payload (not the terminating newline), so a
// stream of single-line JSON payloads stays line-structured - length lines
// and payload lines alternate, and shell tooling (`awk 'NR%2==0'`) can
// recover the payloads - while payloads containing embedded newlines
// (inline multi-line `dfg` uploads) remain unambiguous, because the reader
// consumes by count, never by scanning for a delimiter.
//
// The codec is written against `byte_stream`, so the same framing serves
// stdio (iostream_byte_stream below), TCP and Unix-domain sockets
// (serve/socket.h), and any future transport without touching the daemon;
// the historical std::istream/std::ostream entry points remain as thin
// adapters. Hostile input never throws and never desynchronizes silently -
// a malformed length, an oversize frame, or an EOF mid-frame comes back as
// frame_status::error with a diagnostic, and the daemon's policy (emit one
// transport-error response, stop reading *that stream*, drain) is pinned
// in tests/daemon_test.cpp.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

namespace softsched::serve {

/// Transport bounds. The frame cap exists for admission control at the
/// byte level: a client must not be able to make the daemon buffer an
/// unbounded payload before the request queue ever sees it.
struct frame_limits {
  std::size_t max_frame_bytes = 8u << 20; ///< largest accepted payload
};

enum class frame_status {
  ok,   ///< one complete frame read
  eof,  ///< clean end of stream (EOF exactly at a frame boundary)
  error ///< malformed input; `error` holds the diagnostic
};

/// Result of one read_frame call.
struct frame_read {
  frame_status status = frame_status::eof;
  std::string payload; ///< valid iff status == ok
  std::string error;   ///< non-empty iff status == error
};

/// A duplex byte channel: the one interface every daemon transport
/// implements. Reads are single-consumer (one reader loop per stream);
/// writes may come from many worker threads but are serialized by the
/// caller (the connection's frame writer holds a mutex). Byte counters are
/// atomics so {"op":"stats"} can snapshot them from any thread.
class byte_stream {
public:
  virtual ~byte_stream() = default;

  /// Next byte as unsigned char, or -1 on EOF / error.
  [[nodiscard]] virtual int get() = 0;

  /// Exactly `n` bytes into `dst`; false on EOF or error mid-read.
  [[nodiscard]] virtual bool read_exact(char* dst, std::size_t n) = 0;

  /// All of `data`, or false when the peer is gone. A false return is
  /// sticky: the connection keeps draining, it just stops talking.
  [[nodiscard]] virtual bool write_all(std::string_view data) = 0;

  /// Pushes buffered output to the peer; false when the stream failed.
  virtual bool flush() = 0;

  /// Diagnostic label: "stdio", "tcp:127.0.0.1:4040", "unix:/tmp/d.sock".
  [[nodiscard]] virtual std::string label() const = 0;

  /// Unblocks a reader stuck in get()/read_exact() from another thread
  /// (socket streams half-close the read side); the reader then sees EOF
  /// at the next frame boundary. No-op for streams that cannot.
  virtual void shutdown_read() {}

  /// Signals end-of-requests to the peer while keeping the read side open
  /// (socket streams half-close the write side). Clients use this to turn
  /// "I sent everything" into the server's clean EOF.
  virtual void finish_write() {}

  [[nodiscard]] std::uint64_t bytes_in() const noexcept {
    return bytes_in_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_out() const noexcept {
    return bytes_out_.load(std::memory_order_relaxed);
  }

protected:
  void count_in(std::size_t n) noexcept {
    bytes_in_.fetch_add(n, std::memory_order_relaxed);
  }
  void count_out(std::size_t n) noexcept {
    bytes_out_.fetch_add(n, std::memory_order_relaxed);
  }

private:
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
};

/// std::istream/std::ostream adapter - the stdio transport, and the bridge
/// that keeps the historical iostream codec entry points working. Either
/// side may be null (a read-only or write-only stream). Carries no state of
/// its own beyond the counters, so adapters may be constructed per call.
class iostream_byte_stream final : public byte_stream {
public:
  iostream_byte_stream(std::istream* in, std::ostream* out) : in_(in), out_(out) {}

  [[nodiscard]] int get() override;
  [[nodiscard]] bool read_exact(char* dst, std::size_t n) override;
  [[nodiscard]] bool write_all(std::string_view data) override;
  bool flush() override;
  [[nodiscard]] std::string label() const override { return "stdio"; }

private:
  std::istream* in_;
  std::ostream* out_;
};

/// Accepts byte streams: the server half of a transport. accept() blocks
/// until a client connects and returns its stream, or returns null once
/// shutdown() was called (from any thread) or the listener failed.
class listener {
public:
  virtual ~listener() = default;
  [[nodiscard]] virtual std::unique_ptr<byte_stream> accept() = 0;
  virtual void shutdown() = 0;
  /// The bound address in --listen grammar (after ephemeral-port
  /// resolution), e.g. "tcp:127.0.0.1:45123" or "unix:serve.sock".
  [[nodiscard]] virtual std::string address() const = 0;
};

/// Aggregate transport counters for one daemon session, shared by every
/// connection it serves. Snapshotted into {"op":"stats"} (the "conns"
/// object) and the CLI stderr summary. Byte counters fold in when a
/// connection closes; the stats renderer adds the asking connection's own
/// live bytes on top.
struct connection_counters {
  std::atomic<std::uint64_t> accepted{0};         ///< connections accepted
  std::atomic<std::uint64_t> active{0};           ///< currently being served
  std::atomic<std::uint64_t> shed{0};             ///< refused: too_many_connections
  std::atomic<std::uint64_t> closed{0};           ///< ended (any reason)
  std::atomic<std::uint64_t> transport_errors{0}; ///< ended by a malformed frame
  std::atomic<std::uint64_t> faulted{0};          ///< dropped by conn= injection
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::string transport; ///< listener label; set once before serving
};

/// Plain-value copy of connection_counters (one coherent-enough read of
/// each counter; exact coherence across counters is not promised).
struct connection_counters_snapshot {
  std::uint64_t accepted = 0;
  std::uint64_t active = 0;
  std::uint64_t shed = 0;
  std::uint64_t closed = 0;
  std::uint64_t transport_errors = 0;
  std::uint64_t faulted = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::string transport;
};

[[nodiscard]] connection_counters_snapshot snapshot(const connection_counters& c);

/// Reads one frame. Anything but a well-formed `<count>\n<payload>\n`
/// whose count is within `limits` is an error: a non-digit or empty length
/// line, a length above max_frame_bytes (rejected *before* buffering any
/// payload), EOF inside the length line, EOF before `count` payload bytes
/// arrived (truncated frame), or a missing frame terminator.
[[nodiscard]] frame_read read_frame(byte_stream& in, const frame_limits& limits = {});

/// Writes `payload` as one frame (length line, payload bytes, terminator)
/// and flushes, so a single-request client sees its response without
/// waiting for the daemon's output buffer to fill. Returns false when the
/// stream rejected the write (peer gone).
bool write_frame(byte_stream& out, std::string_view payload);

/// Historical iostream entry points - thin adapters over the byte_stream
/// codec, kept for shell tooling, tests, and single-stream callers.
[[nodiscard]] frame_read read_frame(std::istream& in, const frame_limits& limits = {});
void write_frame(std::ostream& out, std::string_view payload);

} // namespace softsched::serve
