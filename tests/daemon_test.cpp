// daemon_test.cpp - the resident scheduling daemon: frame codec round
// trips and hostile-input rejection, the bounded-queue admission boundary,
// streaming vs input-order response parity (and parity with the batch
// engine), stats-counter consistency under concurrent clients, graceful
// drain, the lock-light latency histogram against a sorted-vector oracle,
// the SOFTSCHED_INJECT fault plan (grammar + slot/shard/conn injection
// semantics), the --listen/--serve flag surface (serve/options.h), and the
// socket transports: stdio/tcp/unix response parity, hello negotiation,
// the --max-conns shed boundary, cross-connection dedup, and dead-client
// isolation.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/daemon.h"
#include "serve/engine.h"
#include "serve/metrics.h"
#include "serve/options.h"
#include "serve/protocol.h"
#include "serve/socket.h"
#include "serve/transport.h"
#include "util/check.h"
#include "util/json_parse.h"

namespace sv = softsched::serve;
using softsched::json_value;
using softsched::parse_json;
using softsched::precondition_error;

namespace {

/// Frames each line as the daemon's client would.
std::string framed(const std::vector<std::string>& lines) {
  std::ostringstream out;
  for (const std::string& l : lines) sv::write_frame(out, l);
  return std::move(out).str();
}

/// Decodes every frame in a daemon output stream.
std::vector<std::string> unframed(const std::string& wire) {
  std::istringstream in(wire);
  std::vector<std::string> payloads;
  for (;;) {
    const sv::frame_read f = sv::read_frame(in);
    if (f.status != sv::frame_status::ok) {
      EXPECT_EQ(f.status, sv::frame_status::eof) << f.error;
      break;
    }
    payloads.push_back(f.payload);
  }
  return payloads;
}

/// Drops the nondeterministic scheduling-latency field - the only part of
/// a response payload the determinism contract does not cover.
std::string strip_ms(const std::string& payload) {
  static const std::regex ms_field(",\"ms\":[0-9.eE+-]+");
  return std::regex_replace(payload, ms_field, "");
}

std::string render(const sv::response& r, bool emit_schedule = true) {
  std::ostringstream oss;
  sv::write_response_line(oss, r, emit_schedule);
  return std::move(oss).str();
}

/// Collects service callbacks thread-safely, indexed by arrival.
struct collector {
  std::mutex mutex;
  std::vector<sv::response> responses;

  sv::service::callback sink() {
    return [this](sv::response r) {
      const std::lock_guard<std::mutex> lock(mutex);
      responses.push_back(std::move(r));
    };
  }
};

/// Exact nearest-rank percentile (the oracle the histogram approximates
/// from above; same definition as bench/load_scenario.h).
double exact_percentile(std::vector<double> sample, double p) {
  std::sort(sample.begin(), sample.end());
  if (sample.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sample.size())));
  return sample[rank > 0 ? rank - 1 : 0];
}

} // namespace

// -- frame codec ------------------------------------------------------------

TEST(FrameCodec, RoundTripsSimplePayload) {
  std::ostringstream out;
  sv::write_frame(out, R"({"id":"a","bench":"ewf"})");
  std::istringstream in(out.str());
  const sv::frame_read f = sv::read_frame(in);
  ASSERT_EQ(f.status, sv::frame_status::ok) << f.error;
  EXPECT_EQ(f.payload, R"({"id":"a","bench":"ewf"})");
  EXPECT_EQ(sv::read_frame(in).status, sv::frame_status::eof);
}

TEST(FrameCodec, RoundTripsEmbeddedNewlinesAndEmptyPayload) {
  // Counted framing is what lets a multi-line dfg upload cross the wire.
  const std::string multiline = "dfg t\nop a add\nop b add a\n";
  std::ostringstream out;
  sv::write_frame(out, multiline);
  sv::write_frame(out, "");
  sv::write_frame(out, "tail");
  std::istringstream in(out.str());
  sv::frame_read f = sv::read_frame(in);
  ASSERT_EQ(f.status, sv::frame_status::ok);
  EXPECT_EQ(f.payload, multiline);
  f = sv::read_frame(in);
  ASSERT_EQ(f.status, sv::frame_status::ok);
  EXPECT_EQ(f.payload, "");
  f = sv::read_frame(in);
  ASSERT_EQ(f.status, sv::frame_status::ok);
  EXPECT_EQ(f.payload, "tail");
  EXPECT_EQ(sv::read_frame(in).status, sv::frame_status::eof);
}

TEST(FrameCodec, SingleLinePayloadsKeepLineStructure) {
  // The shell contract: length lines and payload lines alternate, so
  // `awk 'NR%2==0'` recovers the payloads.
  std::ostringstream out;
  sv::write_frame(out, "one");
  sv::write_frame(out, "two");
  std::istringstream lines(out.str());
  std::vector<std::string> seen;
  for (std::string l; std::getline(lines, l);) seen.push_back(l);
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], "3");
  EXPECT_EQ(seen[1], "one");
  EXPECT_EQ(seen[2], "3");
  EXPECT_EQ(seen[3], "two");
}

TEST(FrameCodec, TruncatedPayloadIsAnError) {
  std::istringstream in("10\nabc");
  const sv::frame_read f = sv::read_frame(in);
  EXPECT_EQ(f.status, sv::frame_status::error);
  EXPECT_NE(f.error.find("truncated"), std::string::npos) << f.error;
}

TEST(FrameCodec, OversizeLengthRejectedBeforeBuffering) {
  // A hostile length must be refused on its face - no attempt to allocate
  // or read the claimed payload (here the payload isn't even present).
  std::istringstream in("999999999999\n");
  const sv::frame_read f = sv::read_frame(in, sv::frame_limits{1 << 20});
  EXPECT_EQ(f.status, sv::frame_status::error);
  EXPECT_NE(f.error.find("exceeds"), std::string::npos) << f.error;

  // At the limit exactly, the frame is still legal.
  const std::string big(1 << 10, 'x');
  std::ostringstream out;
  sv::write_frame(out, big);
  std::istringstream ok_in(out.str());
  EXPECT_EQ(sv::read_frame(ok_in, sv::frame_limits{1 << 10}).status,
            sv::frame_status::ok);
}

TEST(FrameCodec, EofInsideLengthLineIsAnError) {
  std::istringstream in("12"); // digits, then EOF before '\n'
  const sv::frame_read f = sv::read_frame(in);
  EXPECT_EQ(f.status, sv::frame_status::error);
  EXPECT_NE(f.error.find("EOF"), std::string::npos) << f.error;
}

TEST(FrameCodec, MalformedLengthLineIsAnError) {
  for (const char* wire : {"abc\nxyz\n", "-3\nxyz\n", "3x\nxyz\n", "\nxyz\n",
                           "999999999999999999999999\nx\n"}) {
    std::istringstream in(wire);
    EXPECT_EQ(sv::read_frame(in).status, sv::frame_status::error) << wire;
  }
}

TEST(FrameCodec, MissingTerminatorIsAnError) {
  std::istringstream in("3\nabc"); // count consumed, payload read, no '\n'
  const sv::frame_read f = sv::read_frame(in);
  EXPECT_EQ(f.status, sv::frame_status::error);
  EXPECT_NE(f.error.find("terminator"), std::string::npos) << f.error;
}

// -- latency histogram ------------------------------------------------------

TEST(LatencyHistogram, PercentileBracketsSortedVectorOracle) {
  // The pinned contract: percentile() never under-reports the exact order
  // statistic and overshoots it by at most one bucket ratio.
  sv::latency_histogram hist;
  std::vector<double> sample;
  std::uint64_t state = 88172645463325252ull; // xorshift: deterministic mix
  for (int i = 0; i < 2000; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    const double ms = 0.01 * static_cast<double>(1 + state % 100000); // 10us..1s
    sample.push_back(ms);
    hist.record(ms);
  }
  EXPECT_EQ(hist.count(), 2000u);
  for (const double p : {1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0}) {
    const double exact = exact_percentile(sample, p);
    const double approx = hist.percentile(p);
    EXPECT_GE(approx, exact) << "p" << p;
    EXPECT_LE(approx, exact * (1 + sv::latency_histogram::relative_error()) + 1e-9)
        << "p" << p;
  }
}

TEST(LatencyHistogram, EdgeValuesStayInRange) {
  sv::latency_histogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.percentile(99), 0.0); // empty: no invented latency

  hist.record(0);    // at/below the floor: bottom bucket
  hist.record(-5);   // negative input must not crash or wrap
  hist.record(1e12); // far beyond the range: top bucket
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_LE(hist.percentile(1), sv::latency_histogram::floor_ms);
  EXPECT_EQ(hist.percentile(100),
            sv::latency_histogram::bucket_upper_bound(
                sv::latency_histogram::bucket_count - 1));
}

TEST(LatencyHistogram, BucketMappingIsMonotoneAndCovering) {
  double prev_bound = 0;
  for (int b = 0; b < sv::latency_histogram::bucket_count; ++b) {
    const double bound = sv::latency_histogram::bucket_upper_bound(b);
    EXPECT_GT(bound, prev_bound);
    prev_bound = bound;
  }
  const double ceiling = sv::latency_histogram::bucket_upper_bound(
      sv::latency_histogram::bucket_count - 1);
  int prev_bucket = 0;
  for (double ms = 1e-4; ms < 1e6; ms *= 1.37) {
    const int b = sv::latency_histogram::bucket_of(ms);
    EXPECT_GE(b, prev_bucket) << ms; // monotone in the recorded value
    prev_bucket = b;
    if (ms <= ceiling) {
      // In range, the bucket's upper bound covers the value it was chosen
      // for; beyond the range everything clamps to the top bucket.
      EXPECT_GE(sv::latency_histogram::bucket_upper_bound(b) * (1 + 1e-12), ms);
    } else {
      EXPECT_EQ(b, sv::latency_histogram::bucket_count - 1) << ms;
    }
  }
}

// -- fault plan (SOFTSCHED_INJECT grammar) ----------------------------------

TEST(FaultPlan, ParsesSlotAndShardRules) {
  const sv::fault_plan plan =
      sv::fault_plan::parse("slot=0:delay_ms=5,shard=3:fail,slot=2:delay_ms=1.5:fail");
  ASSERT_EQ(plan.slots.size(), 2u);
  ASSERT_EQ(plan.shards.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.slots.at(0).delay_ms, 5);
  EXPECT_FALSE(plan.slots.at(0).fail);
  EXPECT_TRUE(plan.shards.at(3).fail);
  EXPECT_DOUBLE_EQ(plan.shards.at(3).delay_ms, 0);
  EXPECT_DOUBLE_EQ(plan.slots.at(2).delay_ms, 1.5);
  EXPECT_TRUE(plan.slots.at(2).fail);
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(sv::fault_plan::parse("").empty());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW((void)sv::fault_plan::parse("slot=0"), precondition_error);
  EXPECT_THROW((void)sv::fault_plan::parse("cpu=1:fail"), precondition_error);
  EXPECT_THROW((void)sv::fault_plan::parse("slot=x:fail"), precondition_error);
  EXPECT_THROW((void)sv::fault_plan::parse("slot=0:boom"), precondition_error);
  EXPECT_THROW((void)sv::fault_plan::parse("slot=0:delay_ms=-1"), precondition_error);
  EXPECT_THROW((void)sv::fault_plan::parse("slot=0:delay_ms=abc"), precondition_error);
  EXPECT_THROW((void)sv::fault_plan::parse("shard=:fail"), precondition_error);
}

TEST(FaultPlan, FromEnvReadsTheKnob) {
  ASSERT_EQ(setenv("SOFTSCHED_INJECT", "slot=1:fail", 1), 0);
  const sv::fault_plan plan = sv::fault_plan::from_env();
  EXPECT_TRUE(plan.slots.at(1).fail);
  ASSERT_EQ(unsetenv("SOFTSCHED_INJECT"), 0);
  EXPECT_TRUE(sv::fault_plan::from_env().empty());
}

// -- service core -----------------------------------------------------------

TEST(ServeService, AnswersASingleRequest) {
  sv::service_options opt;
  opt.jobs = 1;
  sv::service svc(opt);
  collector got;
  ASSERT_TRUE(svc.submit(1, R"({"id":"q","bench":"ewf"})", got.sink()));
  svc.drain();
  ASSERT_EQ(got.responses.size(), 1u);
  EXPECT_EQ(got.responses[0].id, "q");
  EXPECT_EQ(got.responses[0].line, 1u);
  EXPECT_TRUE(got.responses[0].error.empty()) << got.responses[0].error;
  EXPECT_TRUE(got.responses[0].result.feasible);
  EXPECT_GT(got.responses[0].result.latency, 0);
  const sv::service_stats s = svc.stats();
  EXPECT_EQ(s.computed, 1u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.queue_depth, 0u);
}

TEST(ServeService, ParseErrorsBecomeErrorResponses) {
  sv::service_options opt;
  opt.jobs = 1;
  sv::service svc(opt);
  collector got;
  ASSERT_TRUE(svc.submit(7, "not json", got.sink()));
  svc.drain();
  ASSERT_EQ(got.responses.size(), 1u);
  EXPECT_FALSE(got.responses[0].error.empty());
  EXPECT_EQ(got.responses[0].id, "line7"); // parse failed: synthesized id
  EXPECT_EQ(svc.stats().errors, 1u);
}

TEST(ServeService, AdmissionBoundaryShedsAtExactlyFullAndRecoversAfterDrain) {
  // jobs = 1 maps every request to worker slot 0; the injected delay holds
  // the queue full deterministically while we probe the boundary.
  sv::service_options opt;
  opt.jobs = 1;
  opt.queue_capacity = 2;
  opt.faults = sv::fault_plan::parse("slot=0:delay_ms=30");
  sv::service svc(opt);
  collector got;
  EXPECT_TRUE(svc.submit(1, R"({"bench":"ewf"})", got.sink())); // depth 1
  EXPECT_TRUE(svc.submit(2, R"({"bench":"ewf"})", got.sink())); // depth 2 = capacity
  EXPECT_FALSE(svc.submit(3, R"({"bench":"ewf"})", got.sink())); // full: shed
  EXPECT_FALSE(svc.submit(4, R"({"bench":"ewf"})", got.sink()));
  svc.drain();
  EXPECT_TRUE(svc.submit(5, R"({"bench":"ewf"})", got.sink())); // drained: accepts
  svc.drain();
  EXPECT_EQ(got.responses.size(), 3u); // shed requests never fire callbacks
  const sv::service_stats s = svc.stats();
  EXPECT_EQ(s.submitted, 5u);
  EXPECT_EQ(s.admitted, 3u);
  EXPECT_EQ(s.overloaded, 2u);
  EXPECT_EQ(s.completed, 3u);
  EXPECT_EQ(s.peak_queue_depth, 2u); // bounded at capacity, never above
  EXPECT_EQ(s.queue_depth, 0u);
}

TEST(ServeService, OverloadedResponseCarriesRetryAfterHint) {
  sv::service_options opt;
  opt.jobs = 1;
  opt.retry_after_ms = 25;
  sv::service svc(opt);
  const sv::response shed = svc.overloaded_response(9);
  EXPECT_EQ(shed.error, "overloaded");
  EXPECT_EQ(shed.line, 9u);
  EXPECT_DOUBLE_EQ(shed.retry_after_ms, 25);
  const std::string wire = render(shed);
  EXPECT_NE(wire.find("\"error\":\"overloaded\""), std::string::npos) << wire;
  EXPECT_NE(wire.find("\"retry_after_ms\":25"), std::string::npos) << wire;
  // Ordinary responses never carry the hint.
  EXPECT_EQ(render(sv::response{}).find("retry_after_ms"), std::string::npos);
}

TEST(ServeService, ConcurrentIdenticalRequestsCoalesceOntoOneFlight) {
  // The leader registers its flight before the injected shard delay, so
  // the second identical request reliably arrives mid-flight and joins it.
  sv::service_options opt;
  opt.jobs = 2;
  opt.cache_shards = 1;
  opt.faults = sv::fault_plan::parse("shard=0:delay_ms=40");
  sv::service svc(opt);
  collector got;
  ASSERT_TRUE(svc.submit(1, R"({"id":"a","bench":"ewf"})", got.sink()));
  ASSERT_TRUE(svc.submit(2, R"({"id":"b","bench":"ewf"})", got.sink()));
  svc.drain();
  ASSERT_EQ(got.responses.size(), 2u);
  const sv::service_stats s = svc.stats();
  EXPECT_EQ(s.computed, 1u);
  EXPECT_EQ(s.deduped, 1u);
  EXPECT_EQ(got.responses[0].key, got.responses[1].key);
  EXPECT_TRUE(got.responses[0].result.same_schedule(got.responses[1].result));
}

TEST(ServeService, DedupFollowerSurvivesOversizeRejectedCacheInsert) {
  // Zero cache budget: every insert is rejected as oversize. The follower
  // must receive the leader's result from the flight itself - a cache
  // re-lookup would find nothing.
  sv::service_options opt;
  opt.jobs = 2;
  opt.cache_bytes = 0;
  opt.cache_shards = 1;
  opt.faults = sv::fault_plan::parse("shard=0:delay_ms=40");
  sv::service svc(opt);
  collector got;
  ASSERT_TRUE(svc.submit(1, R"({"id":"a","bench":"hal"})", got.sink()));
  ASSERT_TRUE(svc.submit(2, R"({"id":"b","bench":"hal"})", got.sink()));
  svc.drain();
  ASSERT_EQ(got.responses.size(), 2u);
  for (const sv::response& r : got.responses) {
    EXPECT_TRUE(r.error.empty()) << r.error;
    EXPECT_TRUE(r.result.feasible);
    EXPECT_FALSE(r.result.start_times.empty());
  }
  EXPECT_GE(svc.cache().counters().rejected_oversize, 1u);
  EXPECT_EQ(svc.stats().deduped, 1u);
}

TEST(ServeService, StatsStayConsistentUnderConcurrentClients) {
  sv::service_options opt;
  opt.jobs = 2;
  opt.queue_capacity = 8; // small enough that clients hit the boundary too
  sv::service svc(opt);
  const std::vector<std::string> mix = {
      R"({"bench":"ewf"})",        R"({"bench":"hal"})",
      R"({"bench":"fir16"})",      R"({"bench":"ewf","alus":3})",
      "garbage",                   R"({"bench":"nope"})",
  };
  std::atomic<std::uint64_t> callbacks{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&svc, &mix, &callbacks, c] {
      for (int i = 0; i < 50; ++i) {
        (void)svc.submit(static_cast<std::uint64_t>(c) * 1000 + i + 1,
                         mix[static_cast<std::size_t>(i) % mix.size()],
                         [&callbacks](sv::response) {
                           callbacks.fetch_add(1, std::memory_order_relaxed);
                         });
      }
    });
  }
  for (std::thread& t : clients) t.join();
  svc.drain();
  const sv::service_stats s = svc.stats();
  EXPECT_EQ(s.submitted, 200u);
  EXPECT_EQ(s.submitted, s.admitted + s.overloaded);
  EXPECT_EQ(s.completed, s.admitted);
  EXPECT_EQ(callbacks.load(), s.admitted); // exactly once per admitted request
  // Every completed request lands in exactly one disposition bucket.
  EXPECT_EQ(s.errors + s.computed + s.cache_hits + s.deduped, s.completed);
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_LE(s.peak_queue_depth, opt.queue_capacity);
  EXPECT_GT(s.qps, 0);
  EXPECT_GE(s.p99_ms, s.p50_ms);
}

TEST(ServeService, GracefulDrainCompletesEveryAdmittedRequest) {
  sv::service_options opt;
  opt.jobs = 1;
  opt.queue_capacity = 64;
  opt.faults = sv::fault_plan::parse("slot=0:delay_ms=1");
  sv::service svc(opt);
  std::atomic<std::uint64_t> fired{0};
  std::uint64_t admitted = 0;
  for (int i = 0; i < 20; ++i)
    if (svc.submit(static_cast<std::uint64_t>(i) + 1, R"({"bench":"fig1"})",
                   [&fired](sv::response) { fired.fetch_add(1); }))
      ++admitted;
  svc.drain();
  EXPECT_EQ(fired.load(), admitted); // drain returns only when all answered
  EXPECT_EQ(svc.stats().queue_depth, 0u);
  EXPECT_EQ(svc.stats().completed, admitted);
}

// -- injection semantics ----------------------------------------------------

TEST(ServeInjection, FailedSlotTurnsRequestsIntoInjectedErrors) {
  // jobs = 1: every request lands on slot 0, before parsing even runs.
  sv::service_options opt;
  opt.jobs = 1;
  opt.faults = sv::fault_plan::parse("slot=0:fail");
  sv::service svc(opt);
  collector got;
  ASSERT_TRUE(svc.submit(1, R"({"id":"q","bench":"ewf"})", got.sink()));
  ASSERT_TRUE(svc.submit(2, "not even json", got.sink()));
  svc.drain();
  ASSERT_EQ(got.responses.size(), 2u);
  for (const sv::response& r : got.responses)
    EXPECT_EQ(r.error, "injected fault: worker slot 0");
  EXPECT_EQ(svc.stats().errors, 2u);
  EXPECT_EQ(svc.stats().computed, 0u); // the fault preempts scheduling
}

TEST(ServeInjection, SlotDelayShowsUpInServiceLatency) {
  sv::service_options opt;
  opt.jobs = 1;
  opt.faults = sv::fault_plan::parse("slot=0:delay_ms=20");
  sv::service svc(opt);
  collector got;
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(svc.submit(1, R"({"bench":"fig1"})", got.sink()));
  svc.drain();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(wall_ms, 20.0); // sleep_for guarantees at least the request
  ASSERT_EQ(got.responses.size(), 1u);
  EXPECT_TRUE(got.responses[0].error.empty()); // delayed, not failed
  // The histogram measures admission -> response, so it saw the delay too;
  // its percentile never under-reports.
  EXPECT_GE(svc.stats().p50_ms, 20.0 * 0.9);
}

TEST(ServeInjection, FailedShardIsUnavailableNotFatal) {
  // One shard, failed: lookups miss and inserts are dropped, so the same
  // request is recomputed every time - degraded, never crashed.
  sv::service_options opt;
  opt.jobs = 1;
  opt.cache_shards = 1;
  opt.faults = sv::fault_plan::parse("shard=0:fail");
  sv::service svc(opt);
  collector got;
  ASSERT_TRUE(svc.submit(1, R"({"id":"a","bench":"ewf"})", got.sink()));
  svc.drain();
  ASSERT_TRUE(svc.submit(2, R"({"id":"b","bench":"ewf"})", got.sink()));
  svc.drain();
  ASSERT_EQ(got.responses.size(), 2u);
  for (const sv::response& r : got.responses) {
    EXPECT_TRUE(r.error.empty()) << r.error;
    EXPECT_TRUE(r.result.feasible);
  }
  const sv::service_stats s = svc.stats();
  EXPECT_EQ(s.computed, 2u); // second request recomputed: no hit possible
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(svc.cache().counters().insertions, 0u); // inserts dropped
  EXPECT_TRUE(got.responses[0].result.same_schedule(got.responses[1].result));
}

// -- run_daemon -------------------------------------------------------------

TEST(ServeDaemon, StreamingModeAnswersEveryFrame) {
  std::istringstream in(framed({
      R"({"id":"a","bench":"ewf"})",
      R"({"id":"b","bench":"hal"})",
      R"({"id":"c","broken)",
  }));
  std::ostringstream out;
  sv::daemon_options opt;
  opt.service.jobs = 1;
  const sv::daemon_summary summary = sv::run_daemon(in, out, opt);
  EXPECT_EQ(summary.frames, 3u);
  EXPECT_EQ(summary.requests, 3u);
  EXPECT_EQ(summary.responses, 3u);
  EXPECT_FALSE(summary.shutdown_requested);
  EXPECT_FALSE(summary.transport_error);
  EXPECT_EQ(summary.stats.completed, 3u);
  const std::vector<std::string> payloads = unframed(out.str());
  ASSERT_EQ(payloads.size(), 3u);
  int errors = 0;
  for (const std::string& p : payloads) {
    const json_value v = parse_json(p); // every frame is valid JSON
    if (v.find("error") != nullptr) ++errors;
  }
  EXPECT_EQ(errors, 1); // exactly the broken line
}

TEST(ServeDaemon, OrderedAndStreamingModesAgreeOnPayloads) {
  const std::vector<std::string> lines = {
      R"({"id":"a","bench":"ewf"})",       R"({"id":"b","random":120,"seed":5})",
      R"({"id":"c","bench":"ewf"})",       R"({"id":"bad","bench":"nope"})",
      R"({"id":"d","bench":"fir16"})",     R"(garbage)",
      R"({"id":"e","bench":"iir4"})",
  };
  auto run = [&lines](bool ordered) {
    std::istringstream in(framed(lines));
    std::ostringstream out;
    sv::daemon_options opt;
    opt.service.jobs = 4;
    opt.ordered = ordered;
    (void)sv::run_daemon(in, out, opt);
    std::vector<std::string> payloads = unframed(out.str());
    for (std::string& p : payloads) p = strip_ms(p);
    return payloads;
  };
  std::vector<std::string> streaming = run(false);
  const std::vector<std::string> ordered = run(true);
  ASSERT_EQ(streaming.size(), lines.size());
  ASSERT_EQ(ordered.size(), lines.size());
  // Ordered mode releases strictly by input sequence...
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    const json_value v = parse_json(ordered[i]);
    EXPECT_EQ(v.find("line")->as_integer(1, 1000), static_cast<long long>(i + 1));
  }
  // ...and streaming mode emits the same payload *set*, just reordered.
  std::vector<std::string> ordered_sorted = ordered;
  std::sort(streaming.begin(), streaming.end());
  std::sort(ordered_sorted.begin(), ordered_sorted.end());
  EXPECT_EQ(streaming, ordered_sorted);
}

TEST(ServeDaemon, OrderedModeMatchesBatchEngineByteForByte) {
  // The PR-4 determinism contract, engine edition: --serve --serve-ordered
  // must be indistinguishable from --serve-batch modulo the ms field.
  const std::vector<std::string> lines = {
      R"({"id":"a","bench":"ewf"})",
      R"({"id":"b","bench":"ewf","alus":3,"meta":"topo"})",
      R"({"id":"bad","bench":"missing"})",
      R"({"id":"c","bench":"ewf"})",
      R"(not json)",
      R"({"id":"d","random":120,"seed":5})",
  };
  sv::engine_options eopt;
  eopt.jobs = 1;
  sv::engine eng(eopt);
  std::string jsonl;
  for (const std::string& l : lines) jsonl += l + "\n";
  std::istringstream batch_in(jsonl);
  std::ostringstream batch_out;
  (void)eng.run_stream(batch_in, batch_out);
  std::vector<std::string> batch_lines;
  {
    std::istringstream split(batch_out.str());
    for (std::string l; std::getline(split, l);) batch_lines.push_back(strip_ms(l));
  }

  std::istringstream daemon_in(framed(lines));
  std::ostringstream daemon_out;
  sv::daemon_options dopt;
  dopt.service.jobs = 4;
  dopt.ordered = true;
  (void)sv::run_daemon(daemon_in, daemon_out, dopt);
  std::vector<std::string> daemon_lines = unframed(daemon_out.str());
  for (std::string& p : daemon_lines) p = strip_ms(p);

  ASSERT_EQ(daemon_lines.size(), batch_lines.size());
  for (std::size_t i = 0; i < daemon_lines.size(); ++i)
    EXPECT_EQ(daemon_lines[i], batch_lines[i]) << "line " << i;
}

TEST(ServeDaemon, StatsControlFrameReportsLiveCounters) {
  std::istringstream in(framed({
      R"({"id":"a","bench":"ewf"})",
      R"({"op":"stats"})",
  }));
  std::ostringstream out;
  sv::daemon_options opt;
  opt.service.jobs = 1;
  const sv::daemon_summary summary = sv::run_daemon(in, out, opt);
  EXPECT_EQ(summary.frames, 2u);
  EXPECT_EQ(summary.requests, 1u); // the control frame is not a request
  const std::vector<std::string> payloads = unframed(out.str());
  ASSERT_EQ(payloads.size(), 2u);
  const json_value* stats = nullptr;
  std::vector<json_value> docs;
  for (const std::string& p : payloads) docs.push_back(parse_json(p));
  for (const json_value& v : docs)
    if (const json_value* op = v.find("op"); op != nullptr) stats = &v;
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->find("op")->as_string(), "stats");
  EXPECT_EQ(stats->find("submitted")->as_integer(0, 100), 1);
  ASSERT_NE(stats->find("queue_depth"), nullptr);
  ASSERT_NE(stats->find("p99_ms"), nullptr);
  ASSERT_NE(stats->find("hit_rate"), nullptr);
}

TEST(ServeDaemon, ShutdownDrainsThenAcksAndStopsReading) {
  std::istringstream in(framed({
      R"({"id":"a","bench":"ewf"})",
      R"({"id":"b","bench":"hal"})",
      R"({"op":"shutdown"})",
      R"({"id":"never","bench":"ewf"})", // after shutdown: must stay unread
  }));
  std::ostringstream out;
  sv::daemon_options opt;
  opt.service.jobs = 2;
  const sv::daemon_summary summary = sv::run_daemon(in, out, opt);
  EXPECT_TRUE(summary.shutdown_requested);
  EXPECT_EQ(summary.frames, 3u);
  EXPECT_EQ(summary.requests, 2u);
  EXPECT_EQ(summary.stats.completed, 2u); // drained before the ack
  const std::vector<std::string> payloads = unframed(out.str());
  ASSERT_EQ(payloads.size(), 3u);
  // Pre-shutdown requests all answered; the ack is the final frame.
  EXPECT_EQ(payloads.back(), R"({"op":"shutdown","drained":true,"flushed":0})");
  for (std::size_t i = 0; i + 1 < payloads.size(); ++i)
    EXPECT_EQ(parse_json(payloads[i]).find("op"), nullptr);
}

TEST(ServeDaemon, UnknownOpIsAnErrorFrameNotAShutdown) {
  std::istringstream in(framed({
      R"({"op":"restart"})",
      R"({"id":"after","bench":"fig1"})", // daemon keeps serving
  }));
  std::ostringstream out;
  sv::daemon_options opt;
  opt.service.jobs = 1;
  const sv::daemon_summary summary = sv::run_daemon(in, out, opt);
  EXPECT_FALSE(summary.shutdown_requested);
  EXPECT_EQ(summary.requests, 1u);
  const std::vector<std::string> payloads = unframed(out.str());
  ASSERT_EQ(payloads.size(), 2u);
  // The versioned protocol answers a *structured* error: stable error
  // code, the offending op echoed, the wire version for clients to match.
  const json_value err = parse_json(payloads[0]);
  EXPECT_EQ(err.find("id")->as_string(), "control");
  EXPECT_EQ(err.find("error")->as_string(), "unknown_op");
  EXPECT_EQ(err.find("op")->as_string(), "restart");
  EXPECT_EQ(err.find("v")->as_number(), sv::wire_version);
  EXPECT_TRUE(parse_json(payloads[1]).find("feasible")->as_bool());
}

TEST(ServeDaemon, TransportErrorAnswersOnceDrainsAndStops) {
  std::string wire = framed({R"({"id":"a","bench":"ewf"})"});
  wire += "bogus-length\n";                       // malformed frame
  wire += framed({R"({"id":"b","bench":"hal"})"}); // must stay unread
  std::istringstream in(wire);
  std::ostringstream out;
  sv::daemon_options opt;
  opt.service.jobs = 1;
  const sv::daemon_summary summary = sv::run_daemon(in, out, opt);
  EXPECT_TRUE(summary.transport_error);
  EXPECT_EQ(summary.frames, 1u); // only the well-formed frame counted
  EXPECT_EQ(summary.requests, 1u);
  EXPECT_EQ(summary.stats.completed, 1u); // admitted work still drained
  const std::vector<std::string> payloads = unframed(out.str());
  ASSERT_EQ(payloads.size(), 2u);
  bool saw_transport = false;
  for (const std::string& p : payloads) {
    const json_value v = parse_json(p);
    if (const json_value* id = v.find("id");
        id != nullptr && id->is_string() && id->as_string() == "transport") {
      saw_transport = true;
      EXPECT_FALSE(v.find("error")->as_string().empty());
    }
  }
  EXPECT_TRUE(saw_transport);
}

TEST(ServeDaemon, OverloadShedsWithOverloadedFramesInOrder) {
  // Tiny queue + injected slot delay: a burst must produce a mix of real
  // and "overloaded" responses - exactly one frame per request, in input
  // order under --serve-ordered.
  std::vector<std::string> lines;
  for (int i = 0; i < 8; ++i) lines.push_back(R"({"bench":"fig1"})");
  std::istringstream in(framed(lines));
  std::ostringstream out;
  sv::daemon_options opt;
  opt.service.jobs = 1;
  opt.service.queue_capacity = 1;
  opt.service.retry_after_ms = 5;
  opt.service.faults = sv::fault_plan::parse("slot=0:delay_ms=10");
  opt.ordered = true;
  const sv::daemon_summary summary = sv::run_daemon(in, out, opt);
  EXPECT_EQ(summary.requests, 8u);
  EXPECT_EQ(summary.responses, 8u);
  EXPECT_GT(summary.stats.overloaded, 0u);
  EXPECT_LE(summary.stats.peak_queue_depth, 1u);
  const std::vector<std::string> payloads = unframed(out.str());
  ASSERT_EQ(payloads.size(), 8u);
  std::uint64_t shed = 0;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    const json_value v = parse_json(payloads[i]);
    EXPECT_EQ(v.find("line")->as_integer(1, 100), static_cast<long long>(i + 1));
    if (const json_value* e = v.find("error");
        e != nullptr && e->is_string() && e->as_string() == "overloaded") {
      ++shed;
      EXPECT_NE(payloads[i].find("\"retry_after_ms\":5"), std::string::npos);
    }
  }
  EXPECT_EQ(shed, summary.stats.overloaded);
  EXPECT_EQ(shed + summary.stats.completed, 8u);
}

// -- listen spec + flag surface (serve/options.h) ---------------------------

TEST(ListenSpec, ParsesStdioTcpAndUnixForms) {
  EXPECT_EQ(sv::listen_spec::parse("stdio").kind, sv::listen_spec::transport::stdio);
  const sv::listen_spec tcp = sv::listen_spec::parse("tcp:127.0.0.1:8901");
  EXPECT_EQ(tcp.kind, sv::listen_spec::transport::tcp);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 8901);
  EXPECT_EQ(tcp.label(), "tcp:127.0.0.1:8901");
  const sv::listen_spec ux = sv::listen_spec::parse("unix:/tmp/softsched.sock");
  EXPECT_EQ(ux.kind, sv::listen_spec::transport::unix_domain);
  EXPECT_EQ(ux.path, "/tmp/softsched.sock");
  EXPECT_EQ(ux.label(), "unix:/tmp/softsched.sock");
}

TEST(ListenSpec, RejectsMalformedSpecs) {
  for (const char* bad : {"", "tcp:", "tcp:127.0.0.1", "tcp::80", "tcp:host:",
                          "tcp:host:notaport", "tcp:host:70000", "unix:",
                          "pipe:/tmp/x"})
    EXPECT_THROW((void)sv::listen_spec::parse(bad), precondition_error) << bad;
}

TEST(ServeFlags, ValidationIsOneSharedErrorPath) {
  const sv::serve_flags good;
  EXPECT_NO_THROW(sv::validate_serve_flags(good));
  sv::serve_flags f = good;
  f.max_conns = 0;
  EXPECT_THROW(sv::validate_serve_flags(f), precondition_error);
  f = good;
  f.serve_queue = 0;
  EXPECT_THROW(sv::validate_serve_flags(f), precondition_error);
  f = good;
  f.cache_mb = -1;
  EXPECT_THROW(sv::validate_serve_flags(f), precondition_error);
  f = good;
  f.disk_cache_mb = -1;
  EXPECT_THROW(sv::validate_serve_flags(f), precondition_error);
  f = good;
  f.listen = "carrier-pigeon"; // the same path rejects a malformed --listen
  EXPECT_THROW(sv::validate_serve_flags(f), precondition_error);
}

TEST(ServeFlags, MapIntoEngineAndDaemonOptions) {
  sv::serve_flags f;
  f.jobs = 3;
  f.cache_mb = 8;
  f.serve_queue = 32;
  f.serve_ordered = true;
  f.serve_compact = true;
  f.max_conns = 5;
  f.listen = "unix:/tmp/softsched-flags.sock";
  const sv::daemon_options d = sv::daemon_options_from_flags(f);
  EXPECT_EQ(d.service.jobs, 3);
  EXPECT_EQ(d.service.cache_bytes, 8u << 20);
  EXPECT_EQ(d.service.queue_capacity, 32u);
  EXPECT_FALSE(d.service.emit_schedule);
  EXPECT_TRUE(d.ordered);
  EXPECT_EQ(d.max_connections, 5u);
  EXPECT_EQ(sv::listen_from_flags(f).path, "/tmp/softsched-flags.sock");
  const sv::engine_options e = sv::engine_options_from_flags(f);
  EXPECT_EQ(e.cache_bytes, 8u << 20);
  EXPECT_FALSE(e.emit_schedule);
  EXPECT_EQ(e.jobs, 3);
}

// -- conn= fault grammar ----------------------------------------------------

TEST(FaultPlan, ParsesConnRules) {
  const sv::fault_plan p =
      sv::fault_plan::parse("conn=2:drop,conn=5:stall_ms=12.5,slot=0:delay_ms=1");
  ASSERT_EQ(p.conns.size(), 2u);
  EXPECT_TRUE(p.conns.at(2).drop);
  EXPECT_EQ(p.conns.at(2).stall_ms, 0);
  EXPECT_FALSE(p.conns.at(5).drop);
  EXPECT_EQ(p.conns.at(5).stall_ms, 12.5);
  EXPECT_EQ(p.slots.at(0).delay_ms, 1);
  EXPECT_FALSE(p.empty());
}

TEST(FaultPlan, RejectsConnActionMismatches) {
  // conn actions stay on conn targets, slot/shard actions on theirs.
  EXPECT_THROW((void)sv::fault_plan::parse("conn=1:fail"), precondition_error);
  EXPECT_THROW((void)sv::fault_plan::parse("conn=1:torn"), precondition_error);
  EXPECT_THROW((void)sv::fault_plan::parse("conn=1:delay_ms=5"), precondition_error);
  EXPECT_THROW((void)sv::fault_plan::parse("slot=1:drop"), precondition_error);
  EXPECT_THROW((void)sv::fault_plan::parse("shard=1:stall_ms=5"), precondition_error);
  EXPECT_THROW((void)sv::fault_plan::parse("conn=1:stall_ms=abc"), precondition_error);
  EXPECT_THROW((void)sv::fault_plan::parse("conn=x:drop"), precondition_error);
}

// -- socket transports ------------------------------------------------------

namespace {

/// A per-test unix-socket path under gtest's temp dir.
std::string unix_sock(const std::string& name) {
  return ::testing::TempDir() + "softsched_" + name + ".sock";
}

/// One in-process socket daemon: listener + shared service + accept loop on
/// a background thread, stopped and joined on destruction.
struct socket_daemon {
  std::unique_ptr<sv::listener> lis;
  sv::service svc;
  sv::socket_server server;
  std::thread runner;
  sv::socket_server_summary summary;

  socket_daemon(const sv::listen_spec& spec, const sv::service_options& sopt,
                const sv::socket_server_options& opt = {})
      : lis(sv::make_listener(spec)),
        svc(sopt),
        server(*lis, svc, opt),
        runner([this] { summary = server.run(); }) {}

  ~socket_daemon() {
    server.stop();
    if (runner.joinable()) runner.join();
  }

  /// The bound address (tcp:HOST:0 resolved to the kernel's port).
  [[nodiscard]] sv::listen_spec address() const {
    return sv::listen_spec::parse(lis->address());
  }

  /// Stops the accept loop and hands back its summed summary.
  sv::socket_server_summary finish() {
    server.stop();
    if (runner.joinable()) runner.join();
    return summary;
  }
};

/// Connects to `spec`, retrying briefly.
std::unique_ptr<sv::byte_stream> connect_client(const sv::listen_spec& spec) {
  for (int i = 0; i < 200; ++i) {
    if (auto s = sv::connect_stream(spec)) return s;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return nullptr;
}

/// Decodes response frames until EOF (the server half-closes after drain).
std::vector<std::string> read_to_eof(sv::byte_stream& s) {
  std::vector<std::string> payloads;
  for (;;) {
    const sv::frame_read f = sv::read_frame(s);
    if (f.status != sv::frame_status::ok) {
      EXPECT_EQ(f.status, sv::frame_status::eof) << f.error;
      break;
    }
    payloads.push_back(f.payload);
  }
  return payloads;
}

/// Sends every line, half-closes the write side (the socket sibling of
/// stdin EOF), and reads every response frame.
std::vector<std::string> socket_round_trip(sv::byte_stream& s,
                                           const std::vector<std::string>& lines) {
  for (const std::string& l : lines) EXPECT_TRUE(sv::write_frame(s, l));
  s.finish_write();
  return read_to_eof(s);
}

} // namespace

TEST(SocketDaemon, TcpAndUnixMatchStdioByteForByte) {
  const std::vector<std::string> lines = {
      R"({"id":"a","bench":"ewf"})",
      R"({"id":"b","bench":"hal"})",
      R"({"id":"c","bench":"fig1"})",
  };
  // The stdio reference run, ordered so response order is deterministic.
  std::istringstream in(framed(lines));
  std::ostringstream out;
  sv::daemon_options dopt;
  dopt.service.jobs = 2;
  dopt.ordered = true;
  (void)sv::run_daemon(in, out, dopt);
  std::vector<std::string> want = unframed(out.str());
  for (std::string& p : want) p = strip_ms(p);
  ASSERT_EQ(want.size(), lines.size());

  sv::socket_server_options opt;
  opt.connection.ordered = true;
  const std::vector<sv::listen_spec> binds = {
      sv::listen_spec::parse("unix:" + unix_sock("parity")),
      sv::listen_spec::parse("tcp:127.0.0.1:0"),
  };
  for (const sv::listen_spec& bind : binds) {
    socket_daemon daemon(bind, dopt.service, opt);
    const sv::listen_spec addr = daemon.address();
    if (bind.kind == sv::listen_spec::transport::tcp) {
      EXPECT_NE(addr.port, 0); // ephemeral port resolved at bind
    }
    const std::unique_ptr<sv::byte_stream> client = connect_client(addr);
    ASSERT_NE(client, nullptr) << addr.label();
    std::vector<std::string> got = socket_round_trip(*client, lines);
    for (std::string& p : got) p = strip_ms(p);
    EXPECT_EQ(got, want) << addr.label();
    const sv::socket_server_summary s = daemon.finish();
    EXPECT_EQ(s.conns.accepted, 1u);
    EXPECT_EQ(s.conns.closed, 1u);
    EXPECT_EQ(s.requests, lines.size());
    EXPECT_GT(s.conns.bytes_in, 0u);
    EXPECT_GT(s.conns.bytes_out, 0u);
  }
}

TEST(SocketDaemon, HelloNegotiatesVersionTransportsAndCaps) {
  const sv::listen_spec spec = sv::listen_spec::parse("unix:" + unix_sock("hello"));
  sv::service_options sopt;
  sopt.jobs = 1;
  socket_daemon daemon(spec, sopt);
  const std::unique_ptr<sv::byte_stream> client = connect_client(spec);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(sv::write_frame(*client, R"({"op":"hello"})"));
  const sv::frame_read hello = sv::read_frame(*client);
  ASSERT_EQ(hello.status, sv::frame_status::ok) << hello.error;
  EXPECT_EQ(hello.payload, sv::render_hello()); // renderer IS the wire
  const json_value v = parse_json(hello.payload);
  EXPECT_EQ(v.find("op")->as_string(), "hello");
  EXPECT_EQ(v.find("v")->as_number(), sv::wire_version);
  std::vector<std::string> transports;
  for (const json_value& t : v.find("transports")->items())
    transports.push_back(t.as_string());
  EXPECT_EQ(transports, (std::vector<std::string>{"stdio", "tcp", "unix"}));
  std::vector<std::string> caps;
  for (const json_value& c : v.find("caps")->items()) caps.push_back(c.as_string());
  for (const char* cap : {"hello", "stats", "shutdown", "shed", "dedup"})
    EXPECT_NE(std::find(caps.begin(), caps.end(), cap), caps.end()) << cap;
  // A shutdown from this connection stops the whole server.
  ASSERT_TRUE(sv::write_frame(*client, R"({"op":"shutdown"})"));
  const std::vector<std::string> rest = read_to_eof(*client);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0], sv::render_shutdown_ack(0));
  const sv::socket_server_summary s = daemon.finish();
  EXPECT_TRUE(s.shutdown_requested);
}

TEST(SocketDaemon, StatsReportsConnectionAggregateAndSelf) {
  const sv::listen_spec spec = sv::listen_spec::parse("unix:" + unix_sock("stats"));
  sv::service_options sopt;
  sopt.jobs = 1;
  socket_daemon daemon(spec, sopt);
  const std::unique_ptr<sv::byte_stream> client = connect_client(spec);
  ASSERT_NE(client, nullptr);
  const std::vector<std::string> payloads = socket_round_trip(
      *client, {R"({"bench":"fig1"})", R"({"op":"stats"})"});
  ASSERT_EQ(payloads.size(), 2u);
  const json_value* stats = nullptr;
  std::vector<json_value> docs;
  for (const std::string& p : payloads) docs.push_back(parse_json(p));
  for (const json_value& d : docs)
    if (const json_value* op = d.find("op");
        op != nullptr && op->is_string() && op->as_string() == "stats")
      stats = &d;
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->find("v")->as_number(), sv::wire_version);
  const json_value* conns = stats->find("conns");
  ASSERT_NE(conns, nullptr);
  EXPECT_EQ(conns->find("transport")->as_string(), spec.label());
  EXPECT_EQ(conns->find("accepted")->as_integer(0, 100), 1);
  EXPECT_EQ(conns->find("active")->as_integer(0, 100), 1);
  EXPECT_GT(conns->find("bytes_in")->as_number(), 0); // live bytes included
  const json_value* self = stats->find("conn");
  ASSERT_NE(self, nullptr);
  EXPECT_EQ(self->find("frames")->as_integer(0, 100), 2);
  EXPECT_EQ(self->find("requests")->as_integer(0, 100), 1);
  EXPECT_FALSE(self->find("transport")->as_string().empty());
}

TEST(SocketDaemon, ConnectionLimitShedsBeyondMaxConns) {
  const sv::listen_spec spec = sv::listen_spec::parse("unix:" + unix_sock("shed"));
  sv::service_options sopt;
  sopt.jobs = 1;
  // conn=1 stalls before its first read while holding the only slot - the
  // deterministic pin for the shed boundary.
  sopt.faults = sv::fault_plan::parse("conn=1:stall_ms=250");
  sv::socket_server_options opt;
  opt.max_connections = 1;
  opt.retry_after_ms = 7;
  socket_daemon daemon(spec, sopt, opt);
  const std::unique_ptr<sv::byte_stream> first = connect_client(spec);
  ASSERT_NE(first, nullptr);
  const std::unique_ptr<sv::byte_stream> second = connect_client(spec);
  ASSERT_NE(second, nullptr);
  // The connection beyond the bound: one framed shed answer, then close.
  const sv::frame_read shed = sv::read_frame(*second);
  ASSERT_EQ(shed.status, sv::frame_status::ok) << shed.error;
  EXPECT_EQ(shed.payload, sv::render_connection_shed(7));
  const json_value v = parse_json(shed.payload);
  EXPECT_EQ(v.find("error")->as_string(), "too_many_connections");
  EXPECT_EQ(v.find("retry_after_ms")->as_number(), 7);
  EXPECT_EQ(sv::read_frame(*second).status, sv::frame_status::eof);
  // The stalled connection is degraded, not broken: it still serves.
  const std::vector<std::string> served =
      socket_round_trip(*first, {R"({"bench":"fig1"})"});
  ASSERT_EQ(served.size(), 1u);
  EXPECT_TRUE(parse_json(served[0]).find("feasible")->as_bool());
  const sv::socket_server_summary s = daemon.finish();
  EXPECT_EQ(s.conns.accepted, 2u);
  EXPECT_EQ(s.conns.shed, 1u);
  EXPECT_EQ(s.requests, 1u);
}

TEST(SocketDaemon, ConcurrentClientsShareOneFlightAcrossConnections) {
  const sv::listen_spec spec = sv::listen_spec::parse("unix:" + unix_sock("dedup"));
  sv::service_options sopt;
  sopt.jobs = 4;
  socket_daemon daemon(spec, sopt);
  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  std::atomic<int> answered{0};
  for (int i = 0; i < kClients; ++i)
    clients.emplace_back([&] {
      const std::unique_ptr<sv::byte_stream> c = connect_client(spec);
      ASSERT_NE(c, nullptr);
      const std::vector<std::string> r =
          socket_round_trip(*c, {R"({"bench":"ewf"})"});
      ASSERT_EQ(r.size(), 1u);
      EXPECT_TRUE(parse_json(r[0]).find("feasible")->as_bool());
      answered.fetch_add(1);
    });
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(answered.load(), kClients);
  daemon.svc.drain();
  const sv::service_stats stats = daemon.svc.stats();
  // Identical requests from different connections collapse onto ONE
  // computation: the leader computes, every other lands as a dedup
  // follower or a cache hit depending on arrival timing.
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.computed, 1u);
  EXPECT_EQ(stats.deduped + stats.cache_hits, static_cast<std::uint64_t>(kClients - 1));
  const sv::socket_server_summary s = daemon.finish();
  EXPECT_EQ(s.conns.accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(s.conns.closed, static_cast<std::uint64_t>(kClients));
}

TEST(SocketDaemon, DeadClientMidFlightLeavesSurvivorByteIdentical) {
  const std::vector<std::string> survivor_lines = {
      R"({"id":"s1","bench":"ewf"})",
      R"({"id":"s2","bench":"fig1"})",
      R"({"id":"s3","bench":"fig2"})",
  };
  sv::service_options sopt;
  sopt.jobs = 1;
  // Every request is slowed a little so the victim's is still in flight
  // when its socket dies.
  sopt.faults = sv::fault_plan::parse("slot=0:delay_ms=30");
  sv::socket_server_options opt;
  opt.connection.ordered = true;

  // Solo reference: the survivor alone against a fresh daemon.
  std::vector<std::string> want;
  {
    const sv::listen_spec spec = sv::listen_spec::parse("unix:" + unix_sock("solo"));
    socket_daemon daemon(spec, sopt, opt);
    const std::unique_ptr<sv::byte_stream> client = connect_client(spec);
    ASSERT_NE(client, nullptr);
    want = socket_round_trip(*client, survivor_lines);
    for (std::string& p : want) p = strip_ms(p);
  }
  ASSERT_EQ(want.size(), survivor_lines.size());

  // Same run, but a victim connection dies mid-flight without reading.
  const sv::listen_spec spec = sv::listen_spec::parse("unix:" + unix_sock("kill"));
  socket_daemon daemon(spec, sopt, opt);
  {
    std::unique_ptr<sv::byte_stream> victim = connect_client(spec);
    ASSERT_NE(victim, nullptr);
    // A bench the survivor never asks for, so the survivor's cache
    // behaviour (and thus its bytes) cannot depend on the victim.
    ASSERT_TRUE(sv::write_frame(*victim, R"({"id":"v","bench":"hal"})"));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  } // destroyed unread: the server's response write hits a dead peer
  const std::unique_ptr<sv::byte_stream> survivor = connect_client(spec);
  ASSERT_NE(survivor, nullptr);
  std::vector<std::string> got = socket_round_trip(*survivor, survivor_lines);
  for (std::string& p : got) p = strip_ms(p);
  EXPECT_EQ(got, want); // byte-identical to the solo run, modulo ms
  daemon.svc.drain();
  // The victim's admitted request still completed - a dead peer discards
  // the response bytes but never aborts or stalls the drain.
  EXPECT_EQ(daemon.svc.stats().completed, survivor_lines.size() + 1);
  const sv::socket_server_summary s = daemon.finish();
  EXPECT_EQ(s.conns.accepted, 2u);
  EXPECT_EQ(s.conns.closed, 2u);
}

TEST(SocketDaemon, ConnDropFaultClosesAtAcceptWithoutReadingBytes) {
  const sv::listen_spec spec = sv::listen_spec::parse("unix:" + unix_sock("drop"));
  sv::service_options sopt;
  sopt.jobs = 1;
  sopt.faults = sv::fault_plan::parse("conn=1:drop");
  socket_daemon daemon(spec, sopt);
  const std::unique_ptr<sv::byte_stream> dropped = connect_client(spec);
  ASSERT_NE(dropped, nullptr);
  // The server closes the dropped connection without reading a byte.
  EXPECT_EQ(sv::read_frame(*dropped).status, sv::frame_status::eof);
  const std::unique_ptr<sv::byte_stream> next = connect_client(spec);
  ASSERT_NE(next, nullptr);
  const std::vector<std::string> served =
      socket_round_trip(*next, {R"({"bench":"fig1"})"});
  ASSERT_EQ(served.size(), 1u);
  EXPECT_TRUE(parse_json(served[0]).find("feasible")->as_bool());
  const sv::socket_server_summary s = daemon.finish();
  EXPECT_EQ(s.conns.accepted, 2u);
  EXPECT_EQ(s.conns.faulted, 1u);
  EXPECT_EQ(s.requests, 1u);
}
