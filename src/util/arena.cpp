#include "util/arena.h"

#include <algorithm>

#include "util/check.h"

namespace softsched::util {

namespace {

[[nodiscard]] constexpr bool is_power_of_two(std::size_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

[[nodiscard]] std::size_t align_up(std::size_t offset, std::size_t align) noexcept {
  return (offset + align - 1) & ~(align - 1);
}

} // namespace

// Offsets below are computed against the block's *address*, not just its
// used counter: storage is only max_align_t-aligned, so an over-aligned
// request must fold the base address into the alignment arithmetic.

arena::arena(std::size_t block_bytes)
    : block_bytes_(std::max<std::size_t>(block_bytes, 64)),
      next_block_bytes_(block_bytes_) {}

arena::~arena() = default;

void* arena::allocate(std::size_t bytes, std::size_t align) {
  SOFTSCHED_EXPECT(is_power_of_two(align), "arena alignment must be a power of two");
  if (bytes == 0) bytes = 1; // unique pointers, matching operator new
  if (active_ > 0) {
    block& b = blocks_[active_ - 1];
    const auto base = reinterpret_cast<std::uintptr_t>(b.storage.get());
    const std::size_t offset =
        static_cast<std::size_t>(align_up(base + b.used, align) - base);
    if (offset + bytes <= b.capacity) {
      b.used = offset + bytes;
      ++stats_.allocations;
      stats_.bytes += bytes;
      live_bytes_ += bytes;
      stats_.peak_bytes = std::max(stats_.peak_bytes, live_bytes_);
      return b.storage.get() + offset;
    }
  }
  return allocate_slow(bytes, align);
}

void* arena::allocate_slow(std::size_t bytes, std::size_t align) {
  // Try the retained blocks first (reset() rewound them); a request that
  // fits nowhere gets a new block - geometric growth for normal sizes, an
  // exact-size dedicated block for oversize requests, so one huge closure
  // bitset cannot force every later block to its size.
  const auto offset_in = [&](const block& b) {
    const auto base = reinterpret_cast<std::uintptr_t>(b.storage.get());
    return static_cast<std::size_t>(align_up(base + b.used, align) - base);
  };
  while (active_ < blocks_.size() && offset_in(blocks_[active_]) + bytes >
                                         blocks_[active_].capacity)
    ++active_; // retained block too small for this request; skip forward
  if (active_ == blocks_.size()) {
    // Aligning the request against a fresh block only needs slack when the
    // alignment exceeds operator new's (storage is max_align_t-aligned).
    const std::size_t slack = align > alignof(std::max_align_t) ? align : 0;
    std::size_t capacity = next_block_bytes_;
    if (bytes + slack > capacity)
      capacity = bytes + slack; // dedicated block; chain unaffected
    else
      next_block_bytes_ *= 2;
    block b;
    b.storage = std::make_unique<std::byte[]>(capacity);
    b.capacity = capacity;
    blocks_.push_back(std::move(b));
    stats_.blocks = blocks_.size();
    stats_.block_bytes += capacity;
  }
  block& b = blocks_[active_];
  ++active_;
  const std::size_t offset = offset_in(b);
  SOFTSCHED_EXPECT(offset + bytes <= b.capacity, "arena block sizing failed");
  b.used = offset + bytes;
  ++stats_.allocations;
  stats_.bytes += bytes;
  live_bytes_ += bytes;
  stats_.peak_bytes = std::max(stats_.peak_bytes, live_bytes_);
  return b.storage.get() + offset;
}

void arena::reset() noexcept {
  for (std::size_t i = 0; i < active_; ++i) blocks_[i].used = 0;
  active_ = 0;
  live_bytes_ = 0;
  ++stats_.resets;
}

void arena::release() noexcept {
  blocks_.clear();
  active_ = 0;
  live_bytes_ = 0;
  next_block_bytes_ = block_bytes_;
  stats_.blocks = 0;
  stats_.block_bytes = 0;
}

} // namespace softsched::util
