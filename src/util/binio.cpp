#include "util/binio.h"

namespace softsched {

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) noexcept {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void byte_writer::u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }

void byte_writer::u32(std::uint32_t v) {
  for (int b = 0; b < 4; ++b) out_.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
}

void byte_writer::u64(std::uint64_t v) {
  for (int b = 0; b < 8; ++b) out_.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
}

void byte_writer::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void byte_writer::str(std::string_view s) {
  u64(s.size());
  out_.append(s);
}

void byte_writer::patch_u64(std::size_t offset, std::uint64_t v) {
  for (int b = 0; b < 8; ++b)
    out_[offset + static_cast<std::size_t>(b)] =
        static_cast<char>((v >> (8 * b)) & 0xff);
}

bool byte_reader::take(std::size_t n) noexcept {
  if (!ok_ || n > data_.size() - pos_) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t byte_reader::u8() {
  if (!take(1)) return 0;
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t byte_reader::u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int b = 0; b < 4; ++b)
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_ + static_cast<std::size_t>(b)]))
         << (8 * b);
  pos_ += 4;
  return v;
}

std::uint64_t byte_reader::u64() {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int b = 0; b < 8; ++b)
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_ + static_cast<std::size_t>(b)]))
         << (8 * b);
  pos_ += 8;
  return v;
}

std::int64_t byte_reader::i64() { return static_cast<std::int64_t>(u64()); }

std::string byte_reader::str() {
  const std::uint64_t len = u64();
  if (!ok_ || len > data_.size() - pos_) {
    ok_ = false;
    return {};
  }
  std::string s(data_.substr(pos_, static_cast<std::size_t>(len)));
  pos_ += static_cast<std::size_t>(len);
  return s;
}

} // namespace softsched
