// precedence_graph.h - the precedence graph of Definition 1 in the paper:
// a DAG G = <V, E, D> with a per-vertex delay function D.
//
// This is the substrate every other module builds on. Vertices are arena
// indices (no pointer graphs); adjacency is stored both ways so that the
// schedulers can walk predecessors and successors symmetrically.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace softsched::graph {

/// Strongly-typed vertex index. Comparable and hashable; invalid() is the
/// sentinel "no vertex".
class vertex_id {
public:
  constexpr vertex_id() noexcept = default;
  constexpr explicit vertex_id(std::uint32_t value) noexcept : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return value_ != std::numeric_limits<std::uint32_t>::max();
  }

  [[nodiscard]] static constexpr vertex_id invalid() noexcept { return vertex_id(); }

  friend constexpr bool operator==(vertex_id, vertex_id) noexcept = default;
  friend constexpr auto operator<=>(vertex_id, vertex_id) noexcept = default;

private:
  std::uint32_t value_ = std::numeric_limits<std::uint32_t>::max();
};

/// Directed acyclic graph with integer vertex delays (Definition 1).
///
/// Acyclicity is *not* enforced on every add_edge (builders are free to
/// create edges in any order); call validate() once construction finishes,
/// or rely on the algorithms that require a DAG to throw graph_error.
class precedence_graph {
public:
  precedence_graph() = default;

  /// Creates a vertex with the given delay (must be >= 0) and optional
  /// diagnostic name. Returns its id.
  vertex_id add_vertex(int delay, std::string name = {});

  /// Adds the edge from -> to. Self-loops are rejected; duplicate edges are
  /// ignored (the partial order is a set).
  void add_edge(vertex_id from, vertex_id to);

  /// Removes the edge if present; returns whether it existed.
  bool remove_edge(vertex_id from, vertex_id to);

  [[nodiscard]] bool has_edge(vertex_id from, vertex_id to) const;

  [[nodiscard]] std::size_t vertex_count() const noexcept { return delay_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  [[nodiscard]] int delay(vertex_id v) const;
  void set_delay(vertex_id v, int delay);

  [[nodiscard]] std::string_view name(vertex_id v) const;
  void set_name(vertex_id v, std::string name);

  [[nodiscard]] std::span<const vertex_id> preds(vertex_id v) const;
  [[nodiscard]] std::span<const vertex_id> succs(vertex_id v) const;

  /// Vertices without predecessors ("primary inputs" in the paper).
  [[nodiscard]] std::vector<vertex_id> sources() const;
  /// Vertices without successors ("primary outputs").
  [[nodiscard]] std::vector<vertex_id> sinks() const;

  /// All vertex ids, 0..n-1.
  [[nodiscard]] std::vector<vertex_id> vertices() const;

  /// True iff the graph is acyclic.
  [[nodiscard]] bool is_dag() const;

  /// Throws graph_error if the graph contains a cycle or dangling state.
  void validate() const;

  /// Bounds-checks v and throws precondition_error if it is not a vertex
  /// of this graph.
  void require_vertex(vertex_id v) const;

  /// Monotonically increasing mutation counter. Consumers (e.g. the
  /// threaded scheduler's transitive-closure cache) use it to detect that
  /// the graph changed underneath them.
  [[nodiscard]] std::uint64_t revision() const noexcept { return revision_; }

private:
  std::vector<int> delay_;
  std::vector<std::string> name_;
  std::vector<std::vector<vertex_id>> out_;
  std::vector<std::vector<vertex_id>> in_;
  std::size_t edge_count_ = 0;
  std::uint64_t revision_ = 0;
};

} // namespace softsched::graph
