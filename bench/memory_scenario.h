// memory_scenario.h - the memory micro-profile of the scheduling hot path:
// the Figure-3 suite run through the soft backend on a warmed arena-backed
// run_context vs. the heap-mode baseline, with the process-wide allocation
// counters (util/alloc_count.h) diffed around each measured window.
//
// Emitted into BENCH_softsched.json as the "memory" scenario and gated by
// ci/bench_gate.py: the warmed arena path must perform at least
// `min_alloc_ratio` times fewer heap allocations per scheduled design than
// heap mode, and the two modes must produce identical outcomes (the arena
// is a cost lever, never a result lever). Self-gating like the load/socket
// scenarios - the harness exits nonzero if the ratio or parity fails, so a
// regression cannot hide behind a stale committed baseline.
//
// The harness binary must link softsched::alloc_count; the counters read
// zero (and the scenario fails loudly) otherwise.
//
// peak_live_bytes doubles as the cache-miss proxy: it is the hot working
// set one run touches, and the arena packs it into a handful of contiguous
// blocks where heap mode scatters it across the allocator's free lists.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "ir/benchmarks.h"
#include "sched/backend.h"
#include "util/alloc_count.h"
#include "util/json.h"

namespace softsched::bench {

inline bool write_memory_scenario(json_writer& j) {
  const ir::resource_library library;
  const ir::resource_set constraint = ir::figure3_constraint(0); // 2+/-,2*
  std::vector<ir::dfg> suite;
  std::vector<std::string> names;
  for (const char* name : {"hal", "arf", "ewf", "fir8"}) {
    suite.push_back(ir::make_benchmark(name, library));
    names.emplace_back(name);
  }
  const sched::scheduler_backend& soft = sched::get_backend("soft");

  constexpr int passes = 50;
  constexpr double min_alloc_ratio = 5.0;
  const double designs = static_cast<double>(passes) * static_cast<double>(suite.size());

  struct mode_profile {
    double allocs_per_design = 0;
    double bytes_per_design = 0;
    double frees_per_design = 0;
  };
  std::vector<sched::backend_outcome> reference;
  bool parity = true;

  const auto measure = [&](sched::run_context& ctx) {
    // One warm-up pass: the arena grows its blocks, every scratch vector
    // reaches steady-state capacity. The measured window is the serve
    // worker's hot loop.
    for (const ir::dfg& d : suite) {
      sched::backend_outcome warm = soft.run({d, library, constraint, {}}, ctx);
      if (reference.size() < suite.size()) reference.push_back(std::move(warm));
    }
    const std::uint64_t allocs0 = util::heap_alloc_count();
    const std::uint64_t bytes0 = util::heap_alloc_bytes();
    const std::uint64_t frees0 = util::heap_free_count();
    for (int pass = 0; pass < passes; ++pass)
      for (std::size_t i = 0; i < suite.size(); ++i)
        parity = parity && soft.run({suite[i], library, constraint, {}}, ctx)
                               .same_outcome(reference[i]);
    mode_profile p;
    p.allocs_per_design = static_cast<double>(util::heap_alloc_count() - allocs0) / designs;
    p.bytes_per_design = static_cast<double>(util::heap_alloc_bytes() - bytes0) / designs;
    p.frees_per_design = static_cast<double>(util::heap_free_count() - frees0) / designs;
    return p;
  };

  sched::run_context with_arena(sched::arena_mode::on);
  sched::run_context heap_mode(sched::arena_mode::off);
  const mode_profile arena = measure(with_arena);
  const mode_profile heap = measure(heap_mode);

  // Guard against an uninstrumented binary: heap mode schedules four real
  // designs per pass, which cannot be allocation-free.
  const bool instrumented = heap.allocs_per_design > 0;
  const double ratio =
      arena.allocs_per_design > 0 ? heap.allocs_per_design / arena.allocs_per_design
                                  : heap.allocs_per_design; // arena fully silent
  const bool ok = instrumented && parity && ratio >= min_alloc_ratio;

  const util::arena_stats& astats = *with_arena.arena_stats();
  j.begin_object();
  j.member("constraint", constraint.label());
  j.key("designs");
  j.begin_array();
  for (const std::string& name : names) j.value(name);
  j.end_array();
  j.member("passes", passes);
  const auto mode_block = [&](const char* key, const mode_profile& p) {
    j.key(key);
    j.begin_object();
    j.member("allocations_per_design", p.allocs_per_design);
    j.member("bytes_per_design", p.bytes_per_design);
    j.member("frees_per_design", p.frees_per_design);
    j.end_object();
  };
  mode_block("arena", arena);
  mode_block("heap", heap);
  j.member("alloc_ratio", ratio);
  j.member("min_alloc_ratio", min_alloc_ratio);
  j.member("peak_live_bytes", static_cast<std::uint64_t>(astats.peak_bytes));
  j.member("arena_blocks", static_cast<std::uint64_t>(astats.blocks));
  j.member("arena_block_bytes", static_cast<std::uint64_t>(astats.block_bytes));
  j.member("modes_agree", parity);
  j.member("instrumented", instrumented);
  j.member("ok", ok);
  j.end_object();

  if (!instrumented)
    std::cerr << "memory: allocation counters read zero - is softsched::alloc_count "
                 "linked?\n";
  if (!parity) std::cerr << "memory: arena and heap modes diverged\n";
  if (instrumented && parity && ratio < min_alloc_ratio)
    std::cerr << "memory: alloc ratio " << ratio << " below the " << min_alloc_ratio
              << "x gate (arena " << arena.allocs_per_design << " vs heap "
              << heap.allocs_per_design << " allocs/design)\n";
  return ok;
}

} // namespace softsched::bench
